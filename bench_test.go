package tcam

// bench_test.go regenerates every paper table and figure as a testing.B
// benchmark (scaled-down worlds so `go test -bench=.` terminates in
// minutes), plus the ablation benches DESIGN.md §6 calls out and
// microbenches of the hot paths. Key result values are surfaced through
// b.ReportMetric, so `-bench` output doubles as a smoke reproduction:
// e.g. BenchmarkFigure6DiggAccuracy reports W-TTCAM and UT NDCG so the
// ordering is visible next to the timing.

import (
	"fmt"
	"math/rand"
	"testing"

	"tcam/internal/core"
	"tcam/internal/cuboid"
	"tcam/internal/datagen"
	"tcam/internal/dataset"
	"tcam/internal/distem"
	"tcam/internal/eval"
	"tcam/internal/experiments"
	"tcam/internal/model/ttcam"
	"tcam/internal/topk"
	"tcam/internal/weighting"
)

// benchConfig is the scaled-down experiment configuration every paper
// bench runs at.
func benchConfig() experiments.Config {
	cfg := experiments.Small()
	cfg.MaxQueries = 300
	cfg.EMIters = 10
	return cfg
}

func BenchmarkTable2DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		res := r.Table2()
		b.ReportMetric(float64(res.Rows[0].Ratings), "digg-ratings")
	}
}

func BenchmarkFigure2TopicSignatures(b *testing.B) {
	r := experiments.NewRunner(benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TimePeakedness, "time-peakedness")
		b.ReportMetric(res.UserPeakedness, "user-peakedness")
	}
}

func BenchmarkFigure5BurstyVsPopular(b *testing.B) {
	r := experiments.NewRunner(benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BurstyConcentration, "bursty-conc")
		b.ReportMetric(res.PopularConcentration, "popular-conc")
	}
}

func BenchmarkFigure6DiggAccuracy(b *testing.B) {
	r := experiments.NewRunner(benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanNDCG("W-TTCAM"), "wttcam-ndcg")
		b.ReportMetric(res.MeanNDCG("UT"), "ut-ndcg")
	}
}

func BenchmarkFigure7MovieLensAccuracy(b *testing.B) {
	r := experiments.NewRunner(benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanNDCG("TTCAM"), "ttcam-ndcg")
		b.ReportMetric(res.MeanNDCG("TT"), "tt-ndcg")
	}
}

func BenchmarkTable3IntervalLength(b *testing.B) {
	r := experiments.NewRunner(benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Table3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Best("W-TTCAM")), "best-interval-days")
	}
}

func BenchmarkFigure9TopicCounts(b *testing.B) {
	r := experiments.NewRunner(benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.NDCG5[len(res.NDCG5)-1][len(res.K1s)-1], "max-grid-ndcg")
	}
}

func BenchmarkFigure8OnlineLatency(b *testing.B) {
	r := experiments.NewRunner(benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		douban := res[0]
		b.ReportMetric(float64(douban.MeanTA().Microseconds()), "ta-us")
		b.ReportMetric(float64(douban.MeanBF().Microseconds()), "bf-us")
		b.ReportMetric(float64(douban.MeanBPTF().Microseconds()), "bptf-us")
	}
}

func BenchmarkTable4TrainingTime(b *testing.B) {
	r := experiments.NewRunner(benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Table4()
		if err != nil {
			b.Fatal(err)
		}
		row := res.Times[res.Datasets[0]]
		b.ReportMetric(row["TCAM"].Seconds(), "tcam-train-s")
		b.ReportMetric(row["BPTF"].Seconds(), "bptf-train-s")
	}
}

func BenchmarkFigure10and11LambdaCDF(b *testing.B) {
	r := experiments.NewRunner(benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml, err := r.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		digg, err := r.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ml.MeanLambda, "ml-mean-lambda")
		b.ReportMetric(digg.MeanLambda, "digg-mean-lambda")
	}
}

func BenchmarkTables5and6TopicQuality(b *testing.B) {
	r := experiments.NewRunner(benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t5, err := r.Table5()
		if err != nil {
			b.Fatal(err)
		}
		t6, err := r.Table6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t5.Purity("W-TTCAM"), "delicious-wttcam-purity")
		b.ReportMetric(t6.Purity("W-TTCAM"), "douban-wttcam-purity")
	}
}

func BenchmarkTable7TopicSeparation(b *testing.B) {
	r := experiments.NewRunner(benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Table7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TimeCohortPurity, "time-cohort-purity")
		b.ReportMetric(res.TimeGenrePurity, "time-genre-purity")
	}
}

// --- ablation benches (DESIGN.md §6) ---

// benchWorld returns a mid-sized Digg-like training cuboid shared by the
// ablation and micro benches.
func benchWorld(b *testing.B) *cuboid.Cuboid {
	b.Helper()
	cfg := datagen.DefaultConfig(datagen.Digg)
	cfg.NumUsers, cfg.NumItems, cfg.NumDays = 800, 800, 60
	cfg.Genres, cfg.Events = 16, 40
	w := datagen.MustGenerate(cfg)
	data, _, err := w.Log.Grid(3)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkAblationParallelEM measures one full TTCAM training at 1
// worker vs all workers; compare ns/op across the two sub-benches.
func BenchmarkAblationParallelEM(b *testing.B) {
	data := benchWorld(b)
	for _, workers := range []int{1, 0} {
		name := "workers=1"
		if workers == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ttcam.DefaultConfig()
				cfg.K1, cfg.K2, cfg.MaxIters, cfg.Workers = 20, 12, 10, workers
				if _, _, err := ttcam.Train(data, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTAvsBF quantifies the Threshold Algorithm's saving on
// the same trained model and query stream.
func BenchmarkAblationTAvsBF(b *testing.B) {
	data := benchWorld(b)
	cfg := ttcam.DefaultConfig()
	cfg.K1, cfg.K2, cfg.MaxIters = 20, 12, 10
	m, _, err := ttcam.Train(data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ix := topk.BuildIndex(m)
	b.Run("TA", func(b *testing.B) {
		var examined float64
		for i := 0; i < b.N; i++ {
			_, st := ix.Query(m, i%data.NumUsers(), i%data.NumIntervals(), 10, nil)
			examined += float64(st.ItemsExamined)
		}
		b.ReportMetric(examined/float64(b.N), "items-examined")
	})
	b.Run("BruteForce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topk.BruteForce(m, i%data.NumUsers(), i%data.NumIntervals(), 10, nil)
		}
	})
}

// BenchmarkAblationWeighting isolates the two factors of Equation (19):
// it trains W-TTCAM under iuf-only, burst-only and combined weighting
// and reports the temporal accuracy of each.
func BenchmarkAblationWeighting(b *testing.B) {
	data := benchWorld(b)
	split := dataset.SplitPerInterval(rand.New(rand.NewSource(5)), data, 0.2)
	queries := eval.SampleQueries(eval.BuildQueries(split), 300)
	for _, mode := range []weighting.Mode{weighting.IUFOnly, weighting.BurstOnly, weighting.Combined} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				weighted := weighting.New(split.Train, mode).Apply(split.Train)
				cfg := ttcam.DefaultConfig()
				cfg.K1, cfg.K2, cfg.MaxIters = 20, 12, 10
				m, _, err := ttcam.Train(weighted, cfg)
				if err != nil {
					b.Fatal(err)
				}
				curve := eval.Evaluate(eval.BruteForceRanker(m), queries, 5, 0)
				b.ReportMetric(curve.At(5).NDCG, "ndcg@5")
			}
		})
	}
}

// BenchmarkAblationBackgroundTopic measures the future-work background
// extension against plain TTCAM.
func BenchmarkAblationBackgroundTopic(b *testing.B) {
	data := benchWorld(b)
	for _, bg := range []float64{0, 0.1} {
		name := "background=off"
		if bg > 0 {
			name = "background=0.1"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ttcam.DefaultConfig()
				cfg.K1, cfg.K2, cfg.MaxIters, cfg.Background = 20, 12, 10, bg
				if _, _, err := ttcam.Train(data, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- micro benches of the hot paths ---

func BenchmarkEMIterationTTCAM(b *testing.B) {
	data := benchWorld(b)
	cfg := ttcam.DefaultConfig()
	cfg.K1, cfg.K2 = 20, 12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.MaxIters = 1
		if _, _, err := ttcam.Train(data, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(data.NNZ() * 16))
}

func BenchmarkTAQueryTop10(b *testing.B) {
	data := benchWorld(b)
	cfg := ttcam.DefaultConfig()
	cfg.K1, cfg.K2, cfg.MaxIters = 20, 12, 10
	m, _, err := ttcam.Train(data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ix := topk.BuildIndex(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(m, i%data.NumUsers(), i%data.NumIntervals(), 10, nil)
	}
}

func BenchmarkBruteForceQueryTop10(b *testing.B) {
	data := benchWorld(b)
	cfg := ttcam.DefaultConfig()
	cfg.K1, cfg.K2, cfg.MaxIters = 20, 12, 10
	m, _, err := ttcam.Train(data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topk.BruteForce(m, i%data.NumUsers(), i%data.NumIntervals(), 10, nil)
	}
}

func BenchmarkWeightCuboid(b *testing.B) {
	data := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		weighting.WeightCuboid(data)
	}
}

func BenchmarkTrainAllMethodsSmall(b *testing.B) {
	data := benchWorld(b)
	opts := core.Options{K1: 12, K2: 8, MaxIters: 5, Factors: 8, Epochs: 5, Burnin: 3, Samples: 2, Seed: 1}
	for _, m := range core.AllMethods() {
		b.Run(string(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Train(m, data, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDistributedEM compares the MapReduce-decomposed
// trainer (Section 3.2.3) at different shard counts against the
// in-process trainer on the same data.
func BenchmarkAblationDistributedEM(b *testing.B) {
	data := benchWorld(b)
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := distem.DefaultConfig()
				cfg.K1, cfg.K2, cfg.MaxIters, cfg.Shards = 20, 12, 10, shards
				if _, _, err := distem.Train(data, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionTimeSVD measures the timeSVD++ extension's training
// cost next to the paper's models (see BenchmarkTrainAllMethodsSmall).
func BenchmarkExtensionTimeSVD(b *testing.B) {
	data := benchWorld(b)
	opts := core.Options{Factors: 8, Epochs: 5, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(core.TimeSVD, data, opts); err != nil {
			b.Fatal(err)
		}
	}
}
