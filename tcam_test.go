package tcam

import (
	"math"
	"path/filepath"
	"testing"
)

// newsLog builds a small news-like log: ten trend-followers chase one
// hot story per day; ten loyalists keep reading their own pet feeds.
func newsLog(tb testing.TB) *Dataset {
	tb.Helper()
	log := NewDataset()
	add := func(u, v string, day int64) {
		tb.Helper()
		if err := log.Add(u, v, day, 1); err != nil {
			tb.Fatal(err)
		}
	}
	for day := int64(0); day < 10; day++ {
		hot := "story-hot-" + string(rune('a'+day))
		for u := 0; u < 10; u++ {
			add(userName("follower", u), hot, day)
			if u%2 == 0 {
				add(userName("follower", u), "story-hot-extra-"+string(rune('a'+day)), day)
			}
		}
		for u := 0; u < 10; u++ {
			add(userName("loyal", u), "feed-"+string(rune('a'+u%5)), day)
			add(userName("loyal", u), "feed-"+string(rune('a'+(u+1)%5)), day)
		}
	}
	return log
}

func userName(kind string, i int) string { return kind + "-" + string(rune('0'+i)) }

func fastOptions() Options {
	opts := DefaultOptions()
	opts.K1, opts.K2 = 8, 6
	opts.MaxIters = 25
	opts.Workers = 2
	return opts
}

func TestTrainAndRecommend(t *testing.T) {
	rec, err := Train(newsLog(t), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := rec.Recommend(userName("follower", 3), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d recommendations", len(recs))
	}
	// A trend-follower on day 4 should see day-4's hot content in the
	// top-3 (K2 < number of days, so adjacent days can share a topic).
	found := false
	for _, r := range recs {
		if r.ItemID == "story-hot-e" || r.ItemID == "story-hot-extra-e" {
			found = true
		}
	}
	if !found {
		t.Errorf("day-4 hot content not in top-3: %+v", recs)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Score > recs[i-1].Score {
			t.Error("recommendations not sorted by score")
		}
	}
}

func TestLoyalUserGetsTheirFeed(t *testing.T) {
	rec, err := Train(newsLog(t), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := rec.Recommend(userName("loyal", 2), 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.ItemID == "feed-c" || r.ItemID == "feed-d" {
			found = true
		}
	}
	if !found {
		t.Errorf("loyal user's feeds absent from top-3: %+v", recs)
	}
}

func TestUnknownUser(t *testing.T) {
	rec, err := Train(newsLog(t), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Recommend("nobody", 0, 3); err == nil {
		t.Error("Recommend accepted an unknown user")
	}
	if _, err := rec.Lambda("nobody"); err == nil {
		t.Error("Lambda accepted an unknown user")
	}
}

func TestRecommendExcluding(t *testing.T) {
	rec, err := Train(newsLog(t), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	u := userName("follower", 0)
	base, err := rec.Recommend(u, 4, 1)
	if err != nil || len(base) == 0 {
		t.Fatal(err)
	}
	filtered, err := rec.RecommendExcluding(u, 4, 3, []string{base[0].ItemID, "not-an-item"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range filtered {
		if r.ItemID == base[0].ItemID {
			t.Error("excluded item recommended")
		}
	}
}

func TestLambdaSeparatesUserKinds(t *testing.T) {
	rec, err := Train(newsLog(t), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	var follower, loyal float64
	for i := 0; i < 10; i++ {
		lf, err := rec.Lambda(userName("follower", i))
		if err != nil {
			t.Fatal(err)
		}
		ll, err := rec.Lambda(userName("loyal", i))
		if err != nil {
			t.Fatal(err)
		}
		follower += lf
		loyal += ll
	}
	if loyal/10 <= follower/10 {
		t.Errorf("mean λ loyal %v ≤ follower %v", loyal/10, follower/10)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	rec, err := Train(newsLog(t), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rec.tcam")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRecommender(path)
	if err != nil {
		t.Fatal(err)
	}
	u := userName("follower", 1)
	a, err := rec.Recommend(u, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Recommend(u, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].ItemID != b[i].ItemID || math.Abs(a[i].Score-b[i].Score) > 0 {
			t.Fatalf("rank %d differs after roundtrip: %+v vs %+v", i, a[i], b[i])
		}
	}
	if loaded.Grid() != rec.Grid() {
		t.Error("grid changed in roundtrip")
	}
}

func TestITCAMVariant(t *testing.T) {
	opts := fastOptions()
	opts.Variant = VariantITCAM
	rec, err := Train(newsLog(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := rec.Recommend(userName("follower", 5), 2, 3)
	if err != nil || len(recs) != 3 {
		t.Fatalf("ITCAM variant failed: %v, %d recs", err, len(recs))
	}
}

func TestTopicTopItems(t *testing.T) {
	rec, err := Train(newsLog(t), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rec.NumTopics() != 8+6 {
		t.Fatalf("NumTopics = %d, want 14", rec.NumTopics())
	}
	top := rec.TopicTopItems(0, 4)
	if len(top) != 4 {
		t.Fatalf("got %d top items", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Error("topic items not sorted")
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, DefaultOptions()); err == nil {
		t.Error("Train accepted a nil dataset")
	}
	if _, err := Train(NewDataset(), DefaultOptions()); err == nil {
		t.Error("Train accepted an empty dataset")
	}
	opts := fastOptions()
	opts.Variant = "bogus"
	if _, err := Train(newsLog(t), opts); err == nil {
		t.Error("Train accepted an unknown variant")
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	opts := DefaultOptions()
	if opts.K1 != 60 || opts.K2 != 40 {
		t.Errorf("default topic counts K1=%d K2=%d, paper uses 60/40", opts.K1, opts.K2)
	}
	if !opts.Weighted || opts.Variant != VariantTTCAM {
		t.Error("default should be the paper's best performer, W-TTCAM")
	}
}

func TestRecommendBatchMatchesSequential(t *testing.T) {
	rec, err := Train(newsLog(t), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	queries := []BatchQuery{
		{UserID: userName("follower", 3), When: 4, K: 3},
		{UserID: userName("loyal", 2), When: 7, K: 5},
		{UserID: userName("follower", 0), When: 4}, // K=0 defaults to 10
		{UserID: userName("loyal", 0), When: 2, K: 3, ExcludeIDs: []string{"feed-a", "feed-b"}},
	}
	batch, err := rec.RecommendBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("got %d batch results for %d queries", len(batch), len(queries))
	}
	for i, q := range queries {
		k := q.K
		if k <= 0 {
			k = 10
		}
		want, err := rec.RecommendExcluding(q.UserID, q.When, k, q.ExcludeIDs)
		if err != nil {
			t.Fatal(err)
		}
		got := batch[i]
		if len(got) != len(want) {
			t.Fatalf("query %d: batch returned %d recs, sequential %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("query %d rank %d: batch %+v != sequential %+v", i, j, got[j], want[j])
			}
		}
	}
}

func TestRecommendBatchUnknownUser(t *testing.T) {
	rec, err := Train(newsLog(t), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, err = rec.RecommendBatch([]BatchQuery{
		{UserID: userName("follower", 1), When: 4, K: 3},
		{UserID: "nobody", When: 4, K: 3},
	})
	if err == nil {
		t.Error("RecommendBatch accepted an unknown user")
	}
}
