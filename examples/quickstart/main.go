// Quickstart: build an interaction log by hand, train a temporal
// recommender with the paper's model (weighted TTCAM), and ask it what
// each kind of user should see "today".
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tcam"
)

func main() {
	events := tcam.NewDataset()
	rng := rand.New(rand.NewSource(7))

	// Twenty days of a small news site. One story breaks per day;
	// twenty "chaser" users read whatever is breaking, six "loyal"
	// users stick to their own pair of feeds.
	feeds := []string{"feed-cooking", "feed-gardening", "feed-chess", "feed-cycling"}
	for day := int64(0); day < 20; day++ {
		hot := fmt.Sprintf("story-%02d", day)
		for c := 0; c < 20; c++ {
			user := fmt.Sprintf("chaser-%02d", c)
			must(events.Add(user, hot, day, 1))
			if rng.Float64() < 0.5 {
				must(events.Add(user, hot+"-followup", day, 1))
			}
		}
		for l := 0; l < 6; l++ {
			user := fmt.Sprintf("loyal-%d", l)
			must(events.Add(user, feeds[l%len(feeds)], day, 1))
			must(events.Add(user, feeds[(l+1)%len(feeds)], day, 1))
		}
	}

	opts := tcam.DefaultOptions()
	opts.K1, opts.K2 = 6, 8 // small data, small topic spaces
	opts.MaxIters = 40
	rec, err := tcam.Train(events, opts)
	if err != nil {
		log.Fatal(err)
	}

	// The learned mixing weights tell the populations apart: λu is the
	// probability a user acts on intrinsic interest rather than on the
	// temporal context (the paper's Figures 10–11).
	for _, user := range []string{"chaser-00", "chaser-07", "loyal-0", "loyal-3"} {
		lambda, err := rec.Lambda(user)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("λ(%s) = %.2f\n", user, lambda)
	}

	// Temporal top-k: the same query on different days gives different
	// answers for trend-followers, stable ones for loyal readers.
	for _, day := range []int64{5, 15} {
		fmt.Printf("\n--- recommendations for day %d ---\n", day)
		for _, user := range []string{"chaser-00", "loyal-0"} {
			top, err := rec.Recommend(user, day, 2)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s:", user)
			for _, r := range top {
				fmt.Printf("  %s (%.3f)", r.ItemID, r.Score)
			}
			fmt.Println()
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
