// Movierecs: interest-driven recommendation on a MovieLens-like world,
// with a proper cross-validated head-to-head between TCAM and the
// baselines that ignore one side of the behavior (UT ignores time, TT
// ignores the user).
//
// The example demonstrates the paper's core cross-dataset finding from
// the movie side: when users pick by taste, models without user
// interests (TT) collapse, while TCAM matches or beats the pure
// interest model by folding in what little temporal signal exists
// (release-cohort waves).
//
// Run with:
//
//	go run ./examples/movierecs
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tcam/internal/core"
	"tcam/internal/datagen"
	"tcam/internal/dataset"
	"tcam/internal/eval"
)

func main() {
	cfg := datagen.DefaultConfig(datagen.MovieLens)
	cfg.NumUsers, cfg.NumItems, cfg.NumDays = 900, 800, 360
	cfg.Genres, cfg.Events = 16, 12
	world := datagen.MustGenerate(cfg)
	fmt.Printf("generated %s world: %d users, %d movies, %d ratings\n",
		cfg.Profile, world.Log.NumUsers(), world.Log.NumItems(), world.Log.NumEvents())

	// Month-long intervals, as the paper found optimal for movies.
	data, _, err := world.Log.Grid(30)
	if err != nil {
		log.Fatal(err)
	}

	// Three-fold cross validation under the paper's per-(user, interval)
	// protocol.
	folds := dataset.KFolds(rand.New(rand.NewSource(11)), data, 3)
	methods := []core.Method{core.UT, core.TT, core.TTCAM}
	opts := core.Options{K1: 20, K2: 10, MaxIters: 25, Seed: 1}

	fmt.Printf("\n%-8s %10s %10s %10s   (3-fold CV)\n", "method", "P@5", "NDCG@5", "F1@5")
	for _, m := range methods {
		var p, n, f float64
		for _, fold := range folds {
			res, err := core.Train(m, fold.Train, opts)
			if err != nil {
				log.Fatal(err)
			}
			queries := eval.SampleQueries(eval.BuildQueries(fold), 800)
			curve := eval.Evaluate(eval.BruteForceRanker(res.Model), queries, 5, 0)
			at5 := curve.At(5)
			p += at5.Precision
			n += at5.NDCG
			f += at5.F1
		}
		k := float64(len(folds))
		fmt.Printf("%-8s %10.4f %10.4f %10.4f\n", m, p/k, n/k, f/k)
	}

	// Show one user's stable taste profile: train on everything and
	// inspect what the interest component recommends regardless of time.
	res, err := core.Train(core.TTCAM, data, opts)
	if err != nil {
		log.Fatal(err)
	}
	type tm interface {
		Lambda(u int) float64
		UserInterest(u int) []float64
	}
	model := res.Model.(tm)
	// Pick the most interest-driven user.
	bestU, bestL := 0, -1.0
	for u := 0; u < world.Log.NumUsers(); u++ {
		if l := model.Lambda(u); l > bestL {
			bestL, bestU = l, u
		}
	}
	fmt.Printf("\nmost interest-driven user: %s (λ = %.2f), true genre focus: g%02d\n",
		world.Log.UserID(bestU), bestL, argmax(world.Truth.UserInterest[bestU]))
	fmt.Printf("their learned top user-oriented topic: %d of %d\n",
		argmax(model.UserInterest(bestU)), opts.K1)
}

func argmax(xs []float64) int {
	best, arg := -1.0, 0
	for i, x := range xs {
		if x > best {
			best, arg = x, i
		}
	}
	return arg
}
