// Newsfeed: temporal recommendation on a Digg-like social news world.
//
// This example generates a synthetic news aggregator (short-lived
// stories, bursty events, mostly context-driven users), trains the
// paper's W-TTCAM at a 3-day interval granularity, and then
//
//  1. shows how the same user's feed changes across the timeline,
//  2. contrasts the learned influence-probability distribution with the
//     generator's ground truth (the paper's Figure 11 analysis), and
//  3. demonstrates the Threshold Algorithm's scan savings against a
//     brute-force ranking of the whole catalog.
//
// Run with:
//
//	go run ./examples/newsfeed
package main

import (
	"fmt"
	"log"

	"tcam/internal/datagen"
	"tcam/internal/model/ttcam"
	"tcam/internal/stats"
	"tcam/internal/topk"
	"tcam/internal/weighting"
)

func main() {
	cfg := datagen.DefaultConfig(datagen.Digg)
	cfg.NumUsers, cfg.NumItems, cfg.NumDays = 800, 600, 60
	cfg.Genres, cfg.Events = 16, 30
	world := datagen.MustGenerate(cfg)
	fmt.Printf("generated %s world: %d users, %d stories, %d votes over %d days\n",
		cfg.Profile, world.Log.NumUsers(), world.Log.NumItems(), world.Log.NumEvents(), cfg.NumDays)

	// Grid at the paper's optimal 3-day interval, weight per Section
	// 3.3, and train TTCAM.
	data, grid, err := world.Log.Grid(3)
	if err != nil {
		log.Fatal(err)
	}
	tcfg := ttcam.DefaultConfig()
	tcfg.K1, tcfg.K2 = 24, 16
	tcfg.MaxIters = 30
	tcfg.Label = "W-TTCAM"
	model, tstats, err := ttcam.Train(weighting.WeightCuboid(data), tcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s in %d EM iterations (converged=%v)\n\n",
		model.Name(), tstats.Iterations(), tstats.Converged)

	// 1. A context-driven user's feed across the timeline.
	user := mostTemporalUser(model)
	fmt.Printf("feed of %s (λu = %.2f) across the timeline:\n", world.Log.UserID(user), model.Lambda(user))
	index := topk.BuildIndex(model)
	for _, day := range []int64{6, 30, 54} {
		t := grid.IntervalOf(day)
		top, _ := index.Query(model, user, t, 3, nil)
		fmt.Printf("  day %2d:", day)
		for _, r := range top {
			fmt.Printf("  %s", world.Log.ItemID(r.Item))
		}
		fmt.Println()
	}

	// 2. Influence analysis (Figure 11): on a news site the temporal
	// context dominates.
	learned := make([]float64, model.NumUsers())
	for u := range learned {
		learned[u] = model.Lambda(u)
	}
	fmt.Printf("\ninfluence probabilities: mean λ learned %.3f vs ground truth %.3f\n",
		stats.Mean(learned), stats.Mean(world.Truth.Lambda))
	above := 0
	for _, l := range learned {
		if 1-l > 0.5 {
			above++
		}
	}
	fmt.Printf("users with temporal influence > 0.5: %d of %d (%.0f%%)\n",
		above, len(learned), 100*float64(above)/float64(len(learned)))

	// 3. TA vs brute force on the same query.
	t := grid.IntervalOf(30)
	taTop, taStats := index.Query(model, user, t, 10, nil)
	bfTop, bfStats := topk.BruteForce(model, user, t, 10, nil)
	same := len(taTop) == len(bfTop)
	for i := range taTop {
		if taTop[i].Item != bfTop[i].Item {
			same = false
		}
	}
	fmt.Printf("\nThreshold Algorithm: examined %d of %d items (brute force: %d); identical top-10: %v\n",
		taStats.ItemsExamined, model.NumItems(), bfStats.ItemsExamined, same)
}

// mostTemporalUser returns the user with the lowest λu — the strongest
// trend-follower.
func mostTemporalUser(m *ttcam.Model) int {
	best, arg := 2.0, 0
	for u := 0; u < m.NumUsers(); u++ {
		if l := m.Lambda(u); l < best {
			best, arg = l, u
		}
	}
	return arg
}
