// Topicexplorer: inspect what the two topic families learn, the
// qualitative analysis behind the paper's Tables 5–7 and Figure 2.
//
// On a Delicious-like tagging world it trains TT, TTCAM and W-TTCAM,
// locates the time-oriented topic matching the biggest ground-truth
// event, and prints each model's top tags — showing how the item
// weighting scheme pushes always-popular generic tags out and
// co-bursting event tags in. It then contrasts the temporal signatures
// of a time-oriented and a user-oriented topic.
//
// Run with:
//
//	go run ./examples/topicexplorer
package main

import (
	"fmt"
	"log"
	"strings"

	"tcam/internal/core"
	"tcam/internal/cuboid"
	"tcam/internal/datagen"
	"tcam/internal/model/tt"
	"tcam/internal/model/ttcam"
	"tcam/internal/weighting"
)

func main() {
	cfg := datagen.DefaultConfig(datagen.Delicious)
	cfg.NumUsers, cfg.NumItems, cfg.NumDays = 1000, 900, 180
	cfg.Genres, cfg.Events = 16, 24
	// Heavy always-popular tag pollution — the situation Figure 5 and
	// Table 5 illustrate, and what the item weighting scheme fixes.
	cfg.GenericPopularFrac = 0.03
	cfg.GenericShare = 0.5
	world := datagen.MustGenerate(cfg)
	data, _, err := world.Log.Grid(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s world: %d taggers, %d tags, %d taggings\n\n",
		cfg.Profile, world.Log.NumUsers(), world.Log.NumItems(), world.Log.NumEvents())

	// The biggest ground-truth event (by distinct raters).
	st := cuboid.ComputeStats(data)
	clusterMass := map[int]int{}
	for v := 0; v < data.NumItems(); v++ {
		if x := world.Truth.EventCluster[v]; x >= 0 {
			clusterMass[x] += st.ItemUsers[v]
		}
	}
	event, best := -1, -1
	for x, mass := range clusterMass {
		if mass > best {
			event, best = x, mass
		}
	}
	fmt.Printf("biggest ground-truth event: e%02d (%d distinct-tagger endorsements)\n\n", event, best)

	// Table 5-style comparison: the matched time topic under three
	// models.
	opts := core.Options{K1: 20, K2: 20, MaxIters: 30, Seed: 1}
	ttRes, err := core.Train(core.TT, data, opts)
	if err != nil {
		log.Fatal(err)
	}
	ttModel := ttRes.Model.(*tt.Model)
	show("TT", world, event, matchTopic(world, event, ttModel.Topic, ttModel.K()), ttModel.Topic)

	for _, m := range []core.Method{core.TTCAM, core.WTTCAM} {
		res, err := core.Train(m, data, opts)
		if err != nil {
			log.Fatal(err)
		}
		tm := res.Model.(*ttcam.Model)
		show(string(m), world, event, matchTopic(world, event, tm.TimeTopic, tm.K2()), tm.TimeTopic)
	}

	// Figure 2-style signature contrast on the weighted model.
	wres, err := core.Train(core.WTTCAM, weighting.WeightCuboid(data), opts)
	if err != nil {
		log.Fatal(err)
	}
	wm := wres.Model.(*ttcam.Model)
	fmt.Println("\ntemporal signatures (normalized per-interval activity of each topic's top tags):")
	tSeries := activity(data, wm.TimeTopic(matchTopic(world, event, wm.TimeTopic, wm.K2())))
	uSeries := activity(data, wm.UserTopic(0))
	fmt.Printf("  time topic: %s\n", sparkline(tSeries))
	fmt.Printf("  user topic: %s\n", sparkline(uSeries))
}

// matchTopic finds the topic placing the most mass on the event's tags.
func matchTopic(world *datagen.World, event int, topicOf func(int) []float64, k int) int {
	bestTopic, bestMass := 0, -1.0
	for x := 0; x < k; x++ {
		var mass float64
		for v, p := range topicOf(x) {
			if world.Truth.EventCluster[v] == event {
				mass += p
			}
		}
		if mass > bestMass {
			bestTopic, bestMass = x, mass
		}
	}
	return bestTopic
}

// show prints a model's matched topic with class annotations.
func show(name string, world *datagen.World, event, topic int, topicOf func(int) []float64) {
	weights := topicOf(topic)
	type pair struct {
		v int
		p float64
	}
	var top []pair
	for v, p := range weights {
		top = append(top, pair{v, p})
	}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].p > top[i].p {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	fmt.Printf("%-8s matched time topic #%d:\n", name, topic)
	hits := 0
	for _, e := range top[:8] {
		class := "stable"
		switch {
		case world.Truth.GenericPopular[e.v]:
			class = "GENERIC"
		case world.Truth.EventCluster[e.v] == event:
			class = "event✓"
			hits++
		case world.Truth.EventCluster[e.v] >= 0:
			class = "other-event"
		}
		fmt.Printf("    %-22s %-12s %.4f\n", world.Log.ItemID(e.v), class, e.p)
	}
	fmt.Printf("    → burst purity %d/8\n\n", hits)
}

func activity(data *cuboid.Cuboid, weights []float64) []float64 {
	type pair struct {
		v int
		p float64
	}
	var top []pair
	for v, p := range weights {
		top = append(top, pair{v, p})
	}
	for i := 0; i < 10 && i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].p > top[i].p {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	series := make([]float64, data.NumIntervals())
	for i := 0; i < 10 && i < len(top); i++ {
		for t, x := range cuboid.ItemFrequencySeries(data, top[i].v) {
			series[t] += x
		}
	}
	return cuboid.NormalizeSeries(series)
}

// sparkline renders a series as unicode block characters.
func sparkline(series []float64) string {
	blocks := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, x := range series {
		idx := int(x * float64(len(blocks)-1))
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
