// Onlineupdate: the incremental-deployment extension. A TCAM trained on
// history cannot know the temporal context of an interval that opens
// *after* training — but its time-oriented topics are shared across
// intervals, so the context of a fresh interval can be fit from its
// first ratings alone with a partial EM over θ' (everything else
// frozen). This is the online counterpart of the paper's future-work
// direction on evolving contexts.
//
// The example trains W-TTCAM on the first 80% of a Digg-like timeline,
// streams the held-out days in, refits the new interval's context from
// the accumulating ratings, and shows the recommendations locking onto
// the new events — without retraining.
//
// Run with:
//
//	go run ./examples/onlineupdate
package main

import (
	"fmt"
	"log"
	"sort"

	"tcam/internal/datagen"
	"tcam/internal/dataset"
	"tcam/internal/model/ttcam"
	"tcam/internal/weighting"
)

func main() {
	cfg := datagen.DefaultConfig(datagen.Digg)
	cfg.NumUsers, cfg.NumItems, cfg.NumDays = 800, 600, 75
	cfg.Genres, cfg.Events = 16, 25
	world := datagen.MustGenerate(cfg)

	// History = days [0, cutover); the remaining days arrive online.
	const intervalLen, cutoverDay = 3, 66
	history := dataset.New()
	var futureEvents []futureEvent
	for _, e := range world.Log.Events() {
		userID := world.Log.UserID(e.User)
		itemID := world.Log.ItemID(e.Item)
		if e.Time < cutoverDay {
			if err := history.Add(userID, itemID, e.Time, e.Score); err != nil {
				log.Fatal(err)
			}
		} else {
			futureEvents = append(futureEvents, futureEvent{item: e.Item, day: e.Time})
		}
	}
	sort.SliceStable(futureEvents, func(i, j int) bool { return futureEvents[i].day < futureEvents[j].day })

	data, _, err := history.Grid(intervalLen)
	if err != nil {
		log.Fatal(err)
	}
	tcfg := ttcam.DefaultConfig()
	tcfg.K1, tcfg.K2, tcfg.MaxIters = 24, 20, 30
	tcfg.Label = "W-TTCAM"
	model, _, err := ttcam.Train(weighting.WeightCuboid(data), tcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on days [0,%d): %d ratings, %d intervals\n", cutoverDay, data.NNZ(), data.NumIntervals())
	fmt.Println("(events whose bursts straddle the cutover are partially known; their")
	fmt.Println(" items are in the topic vocabulary, so the fresh context can find them)")
	fmt.Println()

	// Online phase: accumulate the new interval's ratings and refit its
	// temporal context after each batch.
	newRatings := map[int]float64{}
	batchEnd := int64(cutoverDay)
	i := 0
	for _, horizon := range []int64{69, 72, 75} {
		for ; i < len(futureEvents) && futureEvents[i].day < horizon; i++ {
			newRatings[futureEvents[i].item]++
		}
		theta := model.FitNewInterval(newRatings, 25)
		top := topTopics(theta, 3)
		fmt.Printf("after streaming days [%d,%d): %d distinct new items\n", batchEnd, horizon, len(newRatings))
		fmt.Printf("  fitted temporal context: top time-topics %v\n", top)
		fmt.Printf("  context now recommends: %v\n\n", contextTopItems(world, model, theta, 3))
	}

	// Ground truth check: which events actually peak in the streamed
	// window?
	fmt.Println("ground-truth events peaking in the streamed window:")
	for x, day := range world.Truth.PeakDay {
		if day >= cutoverDay {
			fmt.Printf("  e%02d peaks on day %d\n", x, day)
		}
	}
}

type futureEvent struct {
	item int
	day  int64
}

// topTopics returns the indices of the n largest entries.
func topTopics(theta []float64, n int) []int {
	idx := make([]int, len(theta))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return theta[idx[a]] > theta[idx[b]] })
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}

// contextTopItems ranks items by the fitted temporal context alone.
func contextTopItems(world *datagen.World, m *ttcam.Model, theta []float64, n int) []string {
	scores := make([]float64, m.NumItems())
	for x, w := range theta {
		if w <= 0 {
			continue
		}
		row := m.TimeTopic(x)
		for v := range scores {
			scores[v] += w * row[v]
		}
	}
	idx := topTopics(scores, n)
	out := make([]string, 0, n)
	for _, v := range idx {
		out = append(out, world.Log.ItemID(v))
	}
	return out
}
