module tcam

go 1.22
