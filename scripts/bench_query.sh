#!/bin/sh
# Runs the serving benchmarks (TA query fast path, index build, batch
# endpoint, HTTP handlers) and snapshots the numbers into
# BENCH_query.json at the repo root. BenchmarkQueryBatch additionally
# runs under a GOMAXPROCS 1/2/4/8 sweep (go test -cpu), recorded per
# setting via the "gomaxprocs" field, so the JSON carries the multi-core
# scaling curve. Pass a -benchtime value as $1 to trade precision for
# runtime (default 1s).
#
# Usage: scripts/bench_query.sh [benchtime]
set -eu
cd "$(dirname "$0")/.."

benchtime=${1:-1s}
out=BENCH_query.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# run_bench <pkg> <bench regex> [extra go test flags...]: one go test
# invocation appended to $raw, failing loudly when any '|'-separated
# branch of the regex matches no benchmark line (a renamed benchmark
# must not silently vanish from the snapshot).
run_bench() {
    pkg=$1
    pattern=$2
    shift 2
    step=$(mktemp)
    go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" \
        "$@" "$pkg" | tee "$step"
    for branch in $(printf '%s' "$pattern" | tr '|' ' '); do
        # Anchors are for go test's matcher; the presence check just
        # needs the name (output lines may carry a -GOMAXPROCS suffix).
        name=$(printf '%s' "$branch" | tr -d '^$')
        if ! grep -q "^Benchmark.*${name#Benchmark}" "$step"; then
            rm -f "$step"
            echo "bench_query.sh: no benchmark matched branch '$branch' of '$pattern' in $pkg" >&2
            exit 1
        fi
    done
    cat "$step" >> "$raw"
    rm -f "$step"
}

run_bench ./internal/topk/ 'BenchmarkTAQuery|BenchmarkBuildIndex'
run_bench ./internal/topk/ 'BenchmarkQueryBatch' -cpu 1,2,4,8
run_bench ./internal/server/ 'BenchmarkServerRecommend$|BenchmarkServerRecommendExclude$|BenchmarkServerRecommendBatch$'
# Result-cache microbenchmarks (DESIGN.md §16): hit/miss/insert on the
# sharded epoch-versioned cache, plus the hot-user sketch update.
run_bench ./internal/rescache/ 'BenchmarkCacheHit$|BenchmarkCacheMiss$|BenchmarkCachePut$|BenchmarkHotObserve$'
# End-to-end cache phases over a Zipf workload: uncached baseline
# (cold: every query pays the TA scan), warmed steady state, and a
# multi-epoch run that republishes mid-stream with hot-user precompute.
# The Zipf records carry "hit_rate" (and "epochs") alongside ns/op.
run_bench ./internal/server/ 'BenchmarkServerRecommendCacheHit$|BenchmarkServerZipfUncached$|BenchmarkServerZipfCacheWarm$|BenchmarkServerZipfCacheEpochs$|BenchmarkReloadPrecompute$'
# Scatter-gather cost curve: one /recommend through live shard servers
# (real HTTP per leg) at fleet sizes 1, 2 and 4.
run_bench ./internal/shard/ 'BenchmarkCoordinator'

# The -N suffix on a benchmark name is the GOMAXPROCS the run used
# (absent for 1); strip it into the record's "gomaxprocs" field.
awk -v ncpu="$(nproc 2>/dev/null || echo 1)" '
BEGIN { print "{"; printf "  \"cpus\": %d,\n  \"benchmarks\": [\n", ncpu }
/^Benchmark/ {
    name = $1
    procs = 1
    if (match(name, /-[0-9]+$/)) {
        procs = substr(name, RSTART + 1) + 0
        name = substr(name, 1, RSTART - 1)
    }
    line = sprintf("    {\"name\": \"%s\", \"gomaxprocs\": %d, \"iterations\": %s, \"ns_per_op\": %s", name, procs, $2, $3)
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op")      line = line sprintf(", \"bytes_per_op\": %s", $i)
        if ($(i+1) == "allocs/op") line = line sprintf(", \"allocs_per_op\": %s", $i)
        if ($(i+1) == "hit_rate")  line = line sprintf(", \"hit_rate\": %s", $i)
        if ($(i+1) == "epochs")    line = line sprintf(", \"epochs\": %s", $i)
    }
    line = line "}"
    if (n++) printf ",\n"
    printf "%s", line
}
END { print "\n  ]\n}" }
' "$raw" > "$out"
echo "wrote $out"
