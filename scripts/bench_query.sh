#!/bin/sh
# Runs the serving benchmarks (TA query fast path, index build, batch
# endpoint) and snapshots the numbers into BENCH_query.json at the repo
# root. Pass a -benchtime value as $1 to trade precision for runtime
# (default 1x Go's own).
#
# Usage: scripts/bench_query.sh [benchtime]
set -eu
cd "$(dirname "$0")/.."

benchtime=${1:-1s}
out=BENCH_query.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkTAQuery|BenchmarkBuildIndex|BenchmarkQueryBatch' \
    -benchmem -benchtime "$benchtime" ./internal/topk/ | tee "$raw"
go test -run '^$' -bench 'BenchmarkServerRecommend' \
    -benchmem -benchtime "$benchtime" ./internal/server/ | tee -a "$raw"

awk -v ncpu="$(nproc 2>/dev/null || echo 1)" '
BEGIN { print "{"; printf "  \"cpus\": %d,\n  \"benchmarks\": [\n", ncpu }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3)
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op")      line = line sprintf(", \"bytes_per_op\": %s", $i)
        if ($(i+1) == "allocs/op") line = line sprintf(", \"allocs_per_op\": %s", $i)
    }
    line = line "}"
    if (n++) printf ",\n"
    printf "%s", line
}
END { print "\n  ]\n}" }
' "$raw" > "$out"
echo "wrote $out"
