#!/usr/bin/env python3
"""Inject sections of results_full.txt into EXPERIMENTS.md placeholders.

Maintainer utility: after `go run ./cmd/tcamexp -all -out results_full.txt`,
run `python3 scripts/fill_experiments.py` to refresh the measured blocks
in EXPERIMENTS.md. Placeholders look like `<!-- FIGURE6 -->` and are
replaced by fenced excerpts of the corresponding experiment's output.
Running it again replaces the previous excerpts (blocks are delimited by
the placeholder comment and a closing fence).
"""
import re
import sys

RESULTS = "results_full.txt"
DOC = "EXPERIMENTS.md"

# placeholder -> experiment id(s) in results_full.txt
SECTIONS = {
    "TABLE2": ["table2"],
    "FIGURE2": ["figure2"],
    "FIGURE5": ["figure5"],
    "FIGURE6": ["figure6"],
    "FIGURE7": ["figure7"],
    "TABLE3": ["table3"],
    "FIGURE9": ["figure9"],
    "FIGURE8": ["figure8"],
    "TABLE4": ["table4"],
    "FIGURE1011": ["figure10", "figure11"],
    "TABLE5": ["table5"],
    "TABLE6": ["table6"],
    "TABLE7": ["table7"],
}

# experiments whose full output is too long to inline; keep head lines
TRUNCATE = {"figure2": 14, "figure5": 12, "figure10": 12, "figure11": 12}


def extract(results: str, exp: str) -> str:
    m = re.search(
        r"^==== %s: .*?$\n(.*?)^\[%s completed" % (re.escape(exp), re.escape(exp)),
        results,
        re.S | re.M,
    )
    if not m:
        raise SystemExit(f"experiment {exp} not found in {RESULTS}")
    body = m.group(1).rstrip("\n")
    if exp in TRUNCATE:
        lines = body.splitlines()
        keep = TRUNCATE[exp]
        if len(lines) > keep:
            body = "\n".join(lines[:keep]) + "\n  ... (full series in results_full.txt)"
    return body


def main() -> None:
    results = open(RESULTS).read()
    doc = open(DOC).read()
    for key, exps in SECTIONS.items():
        blocks = "\n\n".join("```\n%s\n```" % extract(results, e) for e in exps)
        marker = f"<!-- {key} -->"
        # Replace marker plus any previously injected fenced blocks
        # directly following it.
        pattern = re.compile(
            re.escape(marker) + r"(?:\n+```.*?```)*", re.S
        )
        if not pattern.search(doc):
            raise SystemExit(f"placeholder {marker} missing from {DOC}")
        doc = pattern.sub(marker + "\n\n" + blocks.replace("\\", "\\\\"), doc, count=1)
    open(DOC, "w").write(doc)
    print("EXPERIMENTS.md refreshed from", RESULTS)


if __name__ == "__main__":
    sys.exit(main())
