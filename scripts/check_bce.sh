#!/bin/sh
# Bounds-check-elimination gate for the unrolled kernels (DESIGN.md §12).
# internal/topk/score.go and internal/train/kernels.go hold only
# straight-line kernel code in the slice-forward idiom, which the
# compiler's prove pass strips of every per-element bounds check; this
# script compiles both packages with -d=ssa/check_bce and fails if the
# compiler reports a "Found IsInBounds" inside either kernel file. The
# O(1) reslice checks at loop boundaries show up as IsSliceInBounds and
# are deliberately allowed — the grep below matches the per-element
# diagnostic exactly.
#
# (go build replays cached compiler diagnostics, so re-runs stay cheap.)
#
# Usage: scripts/check_bce.sh
set -eu
cd "$(dirname "$0")/.."

diag=$(go build \
    -gcflags='tcam/internal/topk=-d=ssa/check_bce' \
    -gcflags='tcam/internal/train=-d=ssa/check_bce' \
    ./internal/topk/ ./internal/train/ 2>&1) || {
    echo "$diag" >&2
    echo "check_bce.sh: go build failed" >&2
    exit 1
}

# Sanity check that the diagnostic pass actually ran: a flag typo or a
# future toolchain change silently emitting nothing must not pass green.
if ! printf '%s\n' "$diag" | grep -q 'Found Is'; then
    echo "check_bce.sh: no bounds-check diagnostics emitted; ssa/check_bce inoperative?" >&2
    exit 1
fi

bad=$(printf '%s\n' "$diag" | grep 'Found IsInBounds' |
    grep -E 'internal/topk/score\.go|internal/train/kernels\.go' || true)
if [ -n "$bad" ]; then
    echo "check_bce.sh: per-element bounds checks survive in kernel files:" >&2
    echo "$bad" >&2
    exit 1
fi
echo "check_bce.sh: OK (kernel files free of per-element bounds checks)"
