#!/bin/sh
# Repo hygiene gate: formatting, vet, and race-enabled tests on the
# concurrency-sensitive packages (the pooled TA searcher and the HTTP
# serving layer), then the full suite without -race.
#
# Usage: scripts/check.sh [-short]
#   -short   skip the full (slow) test suite; run only the race gate
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...

# The packages where scratch reuse and pooling could race.
go test -race -count=1 ./internal/topk/ ./internal/server/ ./internal/eval/

if [ "${1:-}" != "-short" ]; then
    go test ./...
fi
echo "check.sh: OK"
