#!/bin/sh
# Repo hygiene gate: formatting, vet, the tcamvet static-analysis suite,
# and race-enabled tests on the concurrency-sensitive packages (the
# pooled TA searcher, the HTTP serving lifecycle — drain/reload/shed —
# the retrying client and the fault-injection hooks), then the full
# suite, a tcamcheck assertion build of the models, and an allocation
# gate on the pooled-searcher benchmarks.
#
# Usage: scripts/check.sh [-short]
#   -short   skip the slow gates; run only formatting, vet, tcamvet and
#            the race tests
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...

# Repo-specific invariants: hot-path allocation rules, float equality,
# seeded randomness, panic message hygiene and dropped errors. Findings
# fail the gate.
go run ./cmd/tcamvet ./...

# Bounds-check-elimination gate: the unrolled kernel files must compile
# with zero per-element bounds checks (DESIGN.md §12).
scripts/check_bce.sh

# The packages where scratch reuse, pooling, snapshot swaps, limiter
# counters or fault hooks could race, plus the ingest log (single
# writer, concurrent readers), the signal-driven lifecycle,
# the sharded EM training engine and the scatter-gather serving tier
# (coordinator fan-out, hedged requests, circuit breakers).
go test -race -count=1 ./internal/topk/ ./internal/server/ ./internal/eval/ \
    ./internal/faultinject/... ./internal/client/ ./internal/atomicfile/ \
    ./internal/ingest/ ./internal/train/ ./internal/shard/ \
    ./internal/rescache/ ./cmd/tcamserver/ ./cmd/tcamshard/

if [ "${1:-}" != "-short" ]; then
    go test ./...

    # Debug-assertion build: train the models with the tcamcheck runtime
    # invariants compiled in (every θ/ϕ row sums to 1 ± 1e-9 and stays
    # finite after each M-step; λ stays in [0,1]).
    go test -tags tcamcheck -count=1 ./internal/model/...

    # Allocation gates: the pooled TA searcher and the serial EM
    # iteration must stay allocation-free at steady state, and the
    # sharded-parallel EM benchmark must still run. Shared with the CI
    # workflow's gates job.
    scripts/bench_smoke.sh
fi
echo "check.sh: OK"
