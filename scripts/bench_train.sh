#!/bin/sh
# Runs the training benchmarks (one full EM iteration for both TCAM
# variants, plus cuboid construction) and snapshots the numbers into
# BENCH_train.json at the repo root, in the same schema bench_query.sh
# uses for BENCH_query.json. The headline metric is cells/s: rated
# cuboid cells processed per second of EM iteration.
#
# Usage: scripts/bench_train.sh [benchtime]
#        scripts/bench_train.sh -smoke
#
#   benchtime   -benchtime value passed to go test (default 1s)
#   -smoke      quick regression gate for check.sh: a 3x run written to
#               a temp file instead of BENCH_train.json, failing if any
#               BenchmarkEMIteration variant reports a nonzero
#               allocs/op (the EM hot loop must stay allocation-free at
#               steady state).
set -eu
cd "$(dirname "$0")/.."

benchtime=${1:-1s}
out=BENCH_train.json
smoke=0
if [ "${1:-}" = "-smoke" ]; then
    smoke=1
    benchtime=3x
    out=$(mktemp)
fi
raw=$(mktemp)
trap 'rm -f "$raw"; [ "$smoke" = 1 ] && rm -f "$out" || true' EXIT

go test -run '^$' -bench 'BenchmarkEMIteration' \
    -benchmem -benchtime "$benchtime" \
    ./internal/model/itcam/ ./internal/model/ttcam/ | tee "$raw"
go test -run '^$' -bench 'BenchmarkCuboidBuild|BenchmarkScaled|BenchmarkSubset' \
    -benchmem -benchtime "$benchtime" ./internal/cuboid/ | tee -a "$raw"

# Both model packages define BenchmarkEMIteration, so qualify each
# benchmark name with the package the preceding "pkg:" line names.
awk -v ncpu="$(nproc 2>/dev/null || echo 1)" '
BEGIN { print "{"; printf "  \"cpus\": %d,\n  \"benchmarks\": [\n", ncpu }
/^pkg:/ { pkg = $2; sub(/^tcam\//, "", pkg) }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    line = sprintf("    {\"name\": \"%s\", \"package\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, pkg, $2, $3)
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "cells/s")   line = line sprintf(", \"cells_per_sec\": %s", $i)
        if ($(i+1) == "B/op")      line = line sprintf(", \"bytes_per_op\": %s", $i)
        if ($(i+1) == "allocs/op") line = line sprintf(", \"allocs_per_op\": %s", $i)
    }
    line = line "}"
    if (n++) printf ",\n"
    printf "%s", line
}
END { print "\n  ]\n}" }
' "$raw" > "$out"

if [ "$smoke" = 1 ]; then
    if ! awk '
        /^BenchmarkEMIteration/ { if ($(NF-1) + 0 != 0) bad = 1 }
        END { exit bad }' "$raw"; then
        echo "bench_train.sh: BenchmarkEMIteration allocates (want 0 allocs/op)" >&2
        exit 1
    fi
    echo "bench_train.sh: smoke OK (EM iteration allocation-free)"
else
    echo "wrote $out"
fi
