#!/bin/sh
# Runs the training benchmarks (one full EM iteration for both TCAM
# variants, serial and sharded-parallel, plus cuboid construction) and
# snapshots the numbers into BENCH_train.json at the repo root, in the
# same schema bench_query.sh uses for BENCH_query.json. The headline
# metric is cells/s: rated cuboid cells processed per second of EM
# iteration. BenchmarkEMIterationParallel runs under a GOMAXPROCS
# 1/2/4/8 sweep (go test -cpu), recorded per setting via the
# "gomaxprocs" field — the multi-core scaling curve.
#
# Usage: scripts/bench_train.sh [benchtime]
#        scripts/bench_train.sh -smoke
#
#   benchtime   -benchtime value passed to go test (default 1s)
#   -smoke      quick regression gate for check.sh: a 3x run of the
#               serial iteration benchmarks only, written to a temp file
#               instead of BENCH_train.json, failing if any serial
#               BenchmarkEMIteration variant reports a nonzero allocs/op
#               (the EM hot loop must stay allocation-free at steady
#               state; the Parallel variant is exempt — fanning shards
#               across workers allocates the closure and goroutines).
set -eu
cd "$(dirname "$0")/.."

benchtime=${1:-1s}
out=BENCH_train.json
smoke=0
if [ "${1:-}" = "-smoke" ]; then
    smoke=1
    benchtime=3x
    out=$(mktemp)
fi
raw=$(mktemp)
trap 'rm -f "$raw"; [ "$smoke" = 1 ] && rm -f "$out" || true' EXIT

# run_bench <bench regex> <extra flags...> -- <pkgs...>: one go test
# invocation appended to $raw, failing loudly when the regex matches no
# benchmark (a renamed benchmark must not silently vanish).
run_bench() {
    pattern=$1
    shift
    step=$(mktemp)
    go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" \
        "$@" | tee "$step"
    if ! grep -q '^Benchmark' "$step"; then
        rm -f "$step"
        echo "bench_train.sh: no benchmarks matched '$pattern'" >&2
        exit 1
    fi
    cat "$step" >> "$raw"
    rm -f "$step"
}

run_bench 'BenchmarkEMIteration(Background)?$' \
    ./internal/model/itcam/ ./internal/model/ttcam/
if [ "$smoke" = 0 ]; then
    run_bench 'BenchmarkEMIterationParallel$' -cpu 1,2,4,8 \
        ./internal/model/itcam/ ./internal/model/ttcam/
    run_bench 'BenchmarkCuboidBuild|BenchmarkScaled|BenchmarkSubset' \
        ./internal/cuboid/
fi

# Both model packages define BenchmarkEMIteration, so qualify each
# benchmark name with the package the preceding "pkg:" line names. The
# -N suffix on a benchmark name is the GOMAXPROCS the run used (absent
# for 1); strip it into the record's "gomaxprocs" field.
awk -v ncpu="$(nproc 2>/dev/null || echo 1)" '
BEGIN { print "{"; printf "  \"cpus\": %d,\n  \"benchmarks\": [\n", ncpu }
/^pkg:/ { pkg = $2; sub(/^tcam\//, "", pkg) }
/^Benchmark/ {
    name = $1
    procs = 1
    if (match(name, /-[0-9]+$/)) {
        procs = substr(name, RSTART + 1) + 0
        name = substr(name, 1, RSTART - 1)
    }
    line = sprintf("    {\"name\": \"%s\", \"package\": \"%s\", \"gomaxprocs\": %d, \"iterations\": %s, \"ns_per_op\": %s", name, pkg, procs, $2, $3)
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "cells/s")   line = line sprintf(", \"cells_per_sec\": %s", $i)
        if ($(i+1) == "B/op")      line = line sprintf(", \"bytes_per_op\": %s", $i)
        if ($(i+1) == "allocs/op") line = line sprintf(", \"allocs_per_op\": %s", $i)
    }
    line = line "}"
    if (n++) printf ",\n"
    printf "%s", line
}
END { print "\n  ]\n}" }
' "$raw" > "$out"

if [ "$smoke" = 1 ]; then
    if ! awk '
        /^BenchmarkEMIteration/ { if ($(NF-1) + 0 != 0) bad = 1 }
        END { exit bad }' "$raw"; then
        echo "bench_train.sh: BenchmarkEMIteration allocates (want 0 allocs/op)" >&2
        exit 1
    fi
    echo "bench_train.sh: smoke OK (EM iteration allocation-free)"
else
    echo "wrote $out"
fi
