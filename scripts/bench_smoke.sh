#!/bin/sh
# Benchmark allocation smoke gates, shared by scripts/check.sh and the
# CI workflow:
#
#   1. the pooled TA searcher must report 0 allocs/op at steady state on
#      the exact path, the eps-budgeted approximate path and under
#      parallel pool churn;
#   2. the serial EM iteration benchmarks must stay allocation-free for
#      both TCAM variants (scripts/bench_train.sh -smoke);
#   3. the sharded-parallel EM benchmark must still run, so a refactor
#      cannot silently break the GOMAXPROCS sweep between full bench
#      runs.
#
# Usage: scripts/bench_smoke.sh
set -eu
cd "$(dirname "$0")/.."

bench_out=$(go test ./internal/topk -run - \
    -bench 'BenchmarkTAQuery$|BenchmarkTAQueryApprox$|BenchmarkTAQueryParallel$' \
    -benchmem -benchtime 200x -count=1)
echo "$bench_out"
if ! echo "$bench_out" | awk '
    /^Benchmark/ { if ($(NF-1) + 0 != 0) bad = 1 }
    END { exit bad }'; then
    echo "bench_smoke.sh: pooled-searcher benchmark allocates (want 0 allocs/op)" >&2
    exit 1
fi

scripts/bench_train.sh -smoke

go test -run '^$' -bench 'BenchmarkEMIterationParallel$' -benchtime 1x \
    ./internal/model/itcam/ ./internal/model/ttcam/ >/dev/null
echo "bench_smoke.sh: OK"
