#!/bin/sh
# Benchmark allocation smoke gates, shared by scripts/check.sh and the
# CI workflow:
#
#   1. the pooled TA searcher must report 0 allocs/op at steady state on
#      the exact path, the eps-budgeted approximate path and under
#      parallel pool churn;
#   2. the serial EM iteration benchmarks must stay allocation-free for
#      both TCAM variants (scripts/bench_train.sh -smoke);
#   3. the sharded-parallel EM benchmark must still run, so a refactor
#      cannot silently break the GOMAXPROCS sweep between full bench
#      runs;
#   4. the streaming-ingestion benchmarks (scripts/bench_ingest.sh)
#      must still run;
#   5. the result cache's hit path must report 0 allocs/op — a cached
#      answer that allocates is a regression of the DESIGN.md §16
#      contract.
#
# Usage: scripts/bench_smoke.sh
set -eu
cd "$(dirname "$0")/.."

bench_out=$(go test ./internal/topk -run - \
    -bench 'BenchmarkTAQuery$|BenchmarkTAQueryApprox$|BenchmarkTAQueryParallel$' \
    -benchmem -benchtime 200x -count=1)
echo "$bench_out"
if ! echo "$bench_out" | awk '
    /^Benchmark/ { if ($(NF-1) + 0 != 0) bad = 1 }
    END { exit bad }'; then
    echo "bench_smoke.sh: pooled-searcher benchmark allocates (want 0 allocs/op)" >&2
    exit 1
fi

cache_out=$(go test ./internal/rescache -run - \
    -bench 'BenchmarkCacheHit$|BenchmarkHotObserve$' \
    -benchmem -benchtime 200x -count=1)
echo "$cache_out"
if ! echo "$cache_out" | awk '
    /^Benchmark/ { if ($(NF-1) + 0 != 0) bad = 1 }
    END { exit bad }'; then
    echo "bench_smoke.sh: result-cache hit path allocates (want 0 allocs/op)" >&2
    exit 1
fi

scripts/bench_train.sh -smoke

go test -run '^$' -bench 'BenchmarkEMIterationParallel$' -benchtime 1x \
    ./internal/model/itcam/ ./internal/model/ttcam/ >/dev/null

# The streaming-ingestion benchmarks must still run (full numbers come
# from scripts/bench_ingest.sh, which also snapshots BENCH_ingest.json;
# this is the does-it-still-build gate, so it writes nothing).
go test -run '^$' -bench 'BenchmarkAppend$|BenchmarkReplay$' -benchtime 1x \
    ./internal/ingest/ >/dev/null
go test -run '^$' -bench 'BenchmarkUpdaterStep$|BenchmarkSnapshotPublish$' -benchtime 1x \
    ./internal/server/ >/dev/null
echo "bench_smoke.sh: OK"
