#!/bin/sh
# Runs the streaming-ingestion benchmarks (ISSUE 9) and snapshots the
# numbers into BENCH_ingest.json at the repo root:
#
#   - internal/ingest append (single-record fsync'd and 128-record
#     batched) and full-log replay, each reporting events/s;
#   - internal/server updater cycle (fold-in latency per event at batch
#     size 1) and the isolated snapshot publish swap.
#
# Pass a -benchtime value as $1 to trade precision for runtime
# (default 1s).
#
# Usage: scripts/bench_ingest.sh [benchtime]
set -eu
cd "$(dirname "$0")/.."

benchtime=${1:-1s}
out=BENCH_ingest.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# run_bench <pkg> <bench regex>: one go test invocation appended to
# $raw, failing loudly when the regex matches no benchmark.
run_bench() {
    pkg=$1
    pattern=$2
    step=$(mktemp)
    go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" \
        "$pkg" | tee "$step"
    if ! grep -q '^Benchmark' "$step"; then
        rm -f "$step"
        echo "bench_ingest.sh: no benchmarks matched '$pattern' in $pkg" >&2
        exit 1
    fi
    cat "$step" >> "$raw"
    rm -f "$step"
}

run_bench ./internal/ingest/ 'BenchmarkAppend$|BenchmarkAppendBatch$|BenchmarkReplay$'
run_bench ./internal/server/ 'BenchmarkUpdaterStep$|BenchmarkSnapshotPublish$'

awk '
BEGIN { print "{"; print "  \"benchmarks\": [" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3)
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "events/s")  line = line sprintf(", \"events_per_s\": %s", $i)
        if ($(i+1) == "B/op")      line = line sprintf(", \"bytes_per_op\": %s", $i)
        if ($(i+1) == "allocs/op") line = line sprintf(", \"allocs_per_op\": %s", $i)
    }
    line = line "}"
    if (n++) printf ",\n"
    printf "%s", line
}
END { print "\n  ]\n}" }
' "$raw" > "$out"
echo "wrote $out"
