#!/usr/bin/env python3
"""Replace the table4 section of results_full.txt with a re-run at a
realistic Gibbs budget (tcamexp -exp table4 -burnin 20 -samples 10,
written to /tmp/table4_new.txt). One-shot maintainer utility."""
import re

results = open("results_full.txt").read()
new = open("/tmp/table4_new.txt").read()

m = re.search(r"^==== table4: .*?$\n(.*?)\n(?=\[table4 completed|\Z)", new, re.S | re.M)
if not m:
    raise SystemExit("table4 section not found in re-run output")
body = m.group(1).rstrip("\n")
body += "\n(BPTF Gibbs budget: 20 burn-in + 10 retained sweeps — a realistic\n chain; the accuracy experiments use the lighter 10+6 default)"

results = re.sub(
    r"(^==== table4: .*?$\n).*?(^\[table4 completed[^\n]*\]$)",
    lambda mm: mm.group(1) + body + "\n" + mm.group(2),
    results,
    flags=re.S | re.M,
)
open("results_full.txt", "w").write(results)
print("spliced")
