// Package tcam is a from-scratch Go implementation of the Temporal
// Context-Aware Mixture model of Yin, Cui, Chen, Hu & Huang, "A Temporal
// Context-Aware Model for User Behavior Modeling in Social Media
// Systems" (SIGMOD 2014), together with everything the paper's
// evaluation depends on: the UT/TT/BPRMF/BPTF baselines, the item
// weighting scheme, the Threshold-Algorithm top-k query processor, and
// synthetic workload generators standing in for the paper's four
// crawled datasets.
//
// This root package is the high-level facade: feed it an interaction
// log, get back a temporal recommender that answers "what should user u
// see right now" queries with the paper's Section 4 machinery. The
// packages under internal/ expose the individual systems (models,
// metrics, query processing) to the binaries in cmd/ and the runnable
// programs in examples/.
//
// Quick start:
//
//	log := tcam.NewDataset()
//	log.Add("alice", "swineflu", day, 1)  // ... many events
//	rec, err := tcam.Train(log, tcam.DefaultOptions())
//	recs, err := rec.Recommend("alice", day, 10)
package tcam

import (
	"errors"
	"fmt"

	"tcam/internal/dataset"
	"tcam/internal/index"
	"tcam/internal/model"
	"tcam/internal/model/itcam"
	"tcam/internal/model/ttcam"
	"tcam/internal/topk"
	"tcam/internal/train"
	"tcam/internal/weighting"
)

// Dataset is an interaction log with interned string identifiers. It is
// an alias of the internal dataset type so facade users and internal
// tooling interoperate.
type Dataset = dataset.Interactions

// TimeGrid maps absolute event times onto model intervals.
type TimeGrid = dataset.TimeGrid

// NewDataset returns an empty interaction log.
func NewDataset() *Dataset { return dataset.New() }

// LoadDataset reads a JSONL interaction log from path (the format
// cmd/tcamgen writes).
func LoadDataset(path string) (*Dataset, error) { return dataset.LoadJSONLFile(path) }

// Variant selects which TCAM formulation the facade trains.
type Variant string

// The two TCAM variants of Section 3.2.
const (
	// VariantTTCAM models the temporal context as a mixture over K2
	// shared time-oriented topics (Section 3.2.2) — the paper's best
	// performer and the right default.
	VariantTTCAM Variant = "ttcam"
	// VariantITCAM models each interval's temporal context directly as
	// an item distribution (Section 3.2.1); only sensible for modest
	// catalogs.
	VariantITCAM Variant = "itcam"
)

// Options configures Train.
type Options struct {
	// Variant picks the TCAM formulation; default VariantTTCAM.
	Variant Variant
	// IntervalLength is the time-grid granularity in the dataset's time
	// unit (Section 5.3.3 tunes this; e.g. 3 for "3 days" on Digg-like
	// logs). Default 1.
	IntervalLength int64
	// K1 and K2 are the user- and time-oriented topic counts (paper
	// defaults 60 and 40).
	K1, K2 int
	// Weighted applies the Section 3.3 item-weighting scheme before
	// training (the W- variants); on by default via DefaultOptions.
	Weighted bool
	// Background is the optional noise-absorbing background weight
	// (TTCAM only; 0 disables).
	Background float64
	// MaxIters bounds EM training. Seed drives all randomness. Workers
	// caps training parallelism (0 = all CPUs); learned parameters never
	// depend on it.
	MaxIters int
	Seed     int64
	Workers  int
	// Tol overrides the relative log-likelihood early-stop tolerance: 0
	// keeps the model default, a negative value disables the early stop
	// so every iteration runs.
	Tol float64
	// CheckpointDir enables training checkpoints in the directory,
	// snapshotting every CheckpointEvery iterations (<= 0 means every
	// iteration). Resume restores the latest snapshot before training; a
	// resumed run finishes with parameters bit-identical to an
	// uninterrupted one.
	CheckpointDir   string
	CheckpointEvery int
	Resume          bool
	// Progress, when non-nil, observes every EM iteration as it
	// completes (log-likelihood, delta, E/M-step wall-time split).
	Progress func(model.IterStat)
}

// DefaultOptions returns the paper's recommended configuration:
// weighted TTCAM with K1=60, K2=40.
func DefaultOptions() Options {
	return Options{
		Variant:        VariantTTCAM,
		IntervalLength: 1,
		K1:             60,
		K2:             40,
		Weighted:       true,
		MaxIters:       50,
		Seed:           1,
	}
}

// Recommendation is one ranked item.
type Recommendation struct {
	ItemID string
	Score  float64
}

// Recommender answers temporal top-k queries over a trained TCAM using
// the Threshold Algorithm of Section 4.2. It is safe for concurrent
// use.
type Recommender struct {
	bundle  *index.Bundle
	index   *topk.Index
	userIdx map[string]int
	itemIdx map[string]int
}

func newRecommender(b *index.Bundle) *Recommender {
	r := &Recommender{
		bundle:  b,
		index:   b.BuildIndex(),
		userIdx: make(map[string]int, len(b.Users)),
		itemIdx: make(map[string]int, len(b.Items)),
	}
	for u, name := range b.Users {
		r.userIdx[name] = u
	}
	for v, name := range b.Items {
		r.itemIdx[name] = v
	}
	return r
}

// Train fits a TCAM on the interaction log and returns a ready-to-query
// recommender.
func Train(log *Dataset, opts Options) (*Recommender, error) {
	if log == nil || log.NumEvents() == 0 {
		return nil, errors.New("tcam: empty interaction log")
	}
	if opts.Variant == "" {
		opts.Variant = VariantTTCAM
	}
	if opts.IntervalLength <= 0 {
		opts.IntervalLength = 1
	}
	data, grid, err := log.Grid(opts.IntervalLength)
	if err != nil {
		return nil, fmt.Errorf("tcam: %w", err)
	}
	if opts.Weighted {
		data = weighting.WeightCuboid(data)
	}
	users := make([]string, log.NumUsers())
	for u := range users {
		users[u] = log.UserID(u)
	}
	items := make([]string, log.NumItems())
	for v := range items {
		items[v] = log.ItemID(v)
	}

	var bundle *index.Bundle
	switch opts.Variant {
	case VariantTTCAM:
		cfg := ttcam.DefaultConfig()
		applyCommon(&cfg.K1, &cfg.K2, &cfg.MaxIters, &cfg.Seed, &cfg.Workers, opts)
		cfg.Tol = resolveTol(cfg.Tol, opts.Tol)
		cfg.Checkpoint = checkpointOf(opts)
		cfg.Hook = opts.Progress
		cfg.Background = opts.Background
		if opts.Weighted {
			cfg.Label = "W-TTCAM"
		}
		m, _, err := ttcam.Train(data, cfg)
		if err != nil {
			return nil, fmt.Errorf("tcam: %w", err)
		}
		bundle = index.NewTTCAM(m, grid, users, items)
	case VariantITCAM:
		cfg := itcam.DefaultConfig()
		k2 := 0
		applyCommon(&cfg.K1, &k2, &cfg.MaxIters, &cfg.Seed, &cfg.Workers, opts)
		cfg.Tol = resolveTol(cfg.Tol, opts.Tol)
		cfg.Checkpoint = checkpointOf(opts)
		cfg.Hook = opts.Progress
		if opts.Weighted {
			cfg.Label = "W-ITCAM"
		}
		m, _, err := itcam.Train(data, cfg)
		if err != nil {
			return nil, fmt.Errorf("tcam: %w", err)
		}
		bundle = index.NewITCAM(m, grid, users, items)
	default:
		return nil, fmt.Errorf("tcam: unknown variant %q", opts.Variant)
	}
	return newRecommender(bundle), nil
}

// resolveTol applies the Options.Tol override semantics to a model
// default: positive overrides, negative disables, zero keeps it.
func resolveTol(def, override float64) float64 {
	switch {
	case override > 0:
		return override
	case override < 0:
		return 0
	default:
		return def
	}
}

// checkpointOf translates the flat facade options into the engine's
// checkpoint config.
func checkpointOf(opts Options) train.CheckpointConfig {
	return train.CheckpointConfig{Dir: opts.CheckpointDir, Every: opts.CheckpointEvery, Resume: opts.Resume}
}

func applyCommon(k1, k2, maxIters *int, seed *int64, workers *int, opts Options) {
	if opts.K1 > 0 {
		*k1 = opts.K1
	}
	if opts.K2 > 0 {
		*k2 = opts.K2
	}
	if opts.MaxIters > 0 {
		*maxIters = opts.MaxIters
	}
	if opts.Seed != 0 {
		*seed = opts.Seed
	}
	*workers = opts.Workers
}

// Recommend returns the top-k items for userID at the given absolute
// time, ranked by the Section 4.1 score and computed with the Threshold
// Algorithm. Unknown users are an error; times outside the training
// span clamp to the nearest interval.
func (r *Recommender) Recommend(userID string, when int64, k int) ([]Recommendation, error) {
	return r.recommend(userID, when, k, nil)
}

// RecommendExcluding is Recommend with an item-ID exclusion set (e.g.
// items the user already consumed).
func (r *Recommender) RecommendExcluding(userID string, when int64, k int, excludeIDs []string) ([]Recommendation, error) {
	if len(excludeIDs) == 0 {
		return r.recommend(userID, when, k, nil)
	}
	banned := make(map[int]bool, len(excludeIDs))
	for _, id := range excludeIDs {
		if v, ok := r.lookupItem(id); ok {
			banned[v] = true
		}
	}
	return r.recommend(userID, when, k, func(v int) bool { return banned[v] })
}

// BatchQuery is one entry of RecommendBatch: a temporal top-k query
// with an optional item-ID exclusion set. K defaults to 10 when zero.
type BatchQuery struct {
	UserID     string
	When       int64
	K          int
	ExcludeIDs []string
}

// RecommendBatch answers many temporal top-k queries in one call,
// fanning them across CPUs with pooled Threshold-Algorithm scratch per
// worker — the serving path for bulk workloads (eval sweeps, feed
// precomputation). Results align with queries by position; any unknown
// user fails the whole batch.
func (r *Recommender) RecommendBatch(queries []BatchQuery) ([][]Recommendation, error) {
	batch := make([]topk.BatchQuery, len(queries))
	for i, q := range queries {
		u, ok := r.lookupUser(q.UserID)
		if !ok {
			return nil, fmt.Errorf("tcam: unknown user %q", q.UserID)
		}
		k := q.K
		if k <= 0 {
			k = 10
		}
		var exclude topk.Exclude
		if len(q.ExcludeIDs) > 0 {
			banned := make(map[int]bool, len(q.ExcludeIDs))
			for _, id := range q.ExcludeIDs {
				if v, ok := r.lookupItem(id); ok {
					banned[v] = true
				}
			}
			exclude = func(v int) bool { return banned[v] }
		}
		batch[i] = topk.BatchQuery{U: u, T: r.bundle.Grid.IntervalOf(q.When), K: k, Exclude: exclude}
	}
	results := r.index.QueryBatch(r.bundle.Scorer(), batch, 0)
	out := make([][]Recommendation, len(results))
	for i, br := range results {
		recs := make([]Recommendation, len(br.Results))
		for j, res := range br.Results {
			recs[j] = Recommendation{ItemID: r.bundle.Items[res.Item], Score: res.Score}
		}
		out[i] = recs
	}
	return out, nil
}

func (r *Recommender) recommend(userID string, when int64, k int, exclude topk.Exclude) ([]Recommendation, error) {
	u, ok := r.lookupUser(userID)
	if !ok {
		return nil, fmt.Errorf("tcam: unknown user %q", userID)
	}
	t := r.bundle.Grid.IntervalOf(when)
	results, _ := r.index.Query(r.bundle.Scorer(), u, t, k, exclude)
	out := make([]Recommendation, len(results))
	for i, res := range results {
		out[i] = Recommendation{ItemID: r.bundle.Items[res.Item], Score: res.Score}
	}
	return out, nil
}

func (r *Recommender) lookupUser(id string) (int, bool) {
	u, ok := r.userIdx[id]
	return u, ok
}

func (r *Recommender) lookupItem(id string) (int, bool) {
	v, ok := r.itemIdx[id]
	return v, ok
}

// Lambda returns the learned personal-interest influence probability λu
// of a user — the quantity Figures 10–11 analyze.
func (r *Recommender) Lambda(userID string) (float64, error) {
	u, ok := r.lookupUser(userID)
	if !ok {
		return 0, fmt.Errorf("tcam: unknown user %q", userID)
	}
	switch r.bundle.Kind {
	case index.KindTTCAM:
		return r.bundle.TTCAM.Lambda(u), nil
	default:
		return r.bundle.ITCAM.Lambda(u), nil
	}
}

// Grid returns the time grid the recommender was trained on.
func (r *Recommender) Grid() TimeGrid { return r.bundle.Grid }

// NumTopics returns the expanded topic-space size (K1 + K2 for TTCAM).
func (r *Recommender) NumTopics() int { return r.bundle.Scorer().NumTopics() }

// TopicTopItems returns the n highest-probability item IDs of expanded
// topic z — how Tables 5–7 inspect what a topic means.
func (r *Recommender) TopicTopItems(z, n int) []Recommendation {
	weights := r.bundle.Scorer().TopicItems(z)
	res, _ := topk.BruteForce(topicAsModel{weights: weights}, 0, 0, n, nil)
	out := make([]Recommendation, len(res))
	for i, x := range res {
		out[i] = Recommendation{ItemID: r.bundle.Items[x.Item], Score: x.Score}
	}
	return out
}

// topicAsModel ranks a single weight vector through the topk machinery.
type topicAsModel struct{ weights []float64 }

func (t topicAsModel) Name() string              { return "topic" }
func (t topicAsModel) NumItems() int             { return len(t.weights) }
func (t topicAsModel) Score(_, _, v int) float64 { return t.weights[v] }

// Save persists the recommender (model + grid + vocabularies) to path.
func (r *Recommender) Save(path string) error { return r.bundle.Save(path) }

// LoadRecommender restores a recommender saved with Save, rebuilding
// the TA index.
func LoadRecommender(path string) (*Recommender, error) {
	b, err := index.Load(path)
	if err != nil {
		return nil, err
	}
	return newRecommender(b), nil
}
