// Command tcamvet runs the repo's static-analysis suite: hotpath
// (//tcam:hotpath functions stay allocation-free), floatcmp (no
// floating-point ==/!=), globalrand (seeded randomness only), panicfmt
// (constant pkg:-prefixed panic messages) and errcheck (no silently
// dropped errors in cmd/ and internal/).
//
// Usage:
//
//	go run ./cmd/tcamvet ./...
//	go run ./cmd/tcamvet -checks hotpath,floatcmp ./internal/topk
//
// Findings print as file:line:col: check: message and make the exit
// status 1; load or type-check failures exit 2. Suppress a single
// finding with `//tcamvet:ignore <check> <justification>` on or above
// the offending line.
package main

import (
	"flag"
	"fmt"
	"os"

	"tcam/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tcamvet", flag.ContinueOnError)
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	checks, err := analysis.ByName(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	moduleDir, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loader, err := analysis.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	dirs, err := analysis.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := analysis.Run(loader, dirs, checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tcamvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
