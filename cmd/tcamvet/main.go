// Command tcamvet runs the repo's static-analysis suite: hotpath
// (//tcam:hotpath functions stay allocation-free), hotpathstrict (and
// avoid defer, interface dispatch, constant-exponent math.Pow and
// string copies), floatcmp (no floating-point ==/!=), globalrand
// (seeded randomness only), panicfmt (constant pkg:-prefixed panic
// messages), errcheck (no silently dropped errors in cmd/ and
// internal/), maprange (map iteration order must not leak into
// output), goroutines (go statements in internal/ are join-accounted)
// and ctxflow (received contexts propagate through the serving and
// training packages).
//
// Usage:
//
//	go run ./cmd/tcamvet ./...
//	go run ./cmd/tcamvet -checks hotpath,floatcmp ./internal/topk
//	go run ./cmd/tcamvet -json ./...
//
// Findings print as file:line:col: check: message — or, with -json, as
// a JSON array of {file, line, col, check, message} objects for CI
// tooling — and make the exit status 1; load or type-check failures
// exit 2. Suppress a single finding with `//tcamvet:ignore <check>
// <justification>` on or above the offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"tcam/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// jsonDiagnostic is the machine-readable shape of one finding, stable
// for CI consumers.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("tcamvet", flag.ContinueOnError)
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	jsonFlag := fs.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	checks, err := analysis.ByName(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	moduleDir, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loader, err := analysis.NewLoader(moduleDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	dirs, err := analysis.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := analysis.Run(loader, dirs, checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *jsonFlag {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Check:   d.Check,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			_, _ = fmt.Fprintln(stdout, d) // best-effort CLI output, like fmt.Println before it
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tcamvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
