package main

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

func TestRunCleanPackage(t *testing.T) {
	if got := run([]string{"-checks", "floatcmp", "../../internal/mat"}, io.Discard); got != 0 {
		t.Fatalf("run on clean package = %d, want 0", got)
	}
}

func TestRunFindingsExitOne(t *testing.T) {
	if got := run([]string{"-checks", "floatcmp", "../../internal/analysis/testdata/src/floatcmp"}, io.Discard); got != 1 {
		t.Fatalf("run on fixture = %d, want 1", got)
	}
}

func TestRunUnknownCheck(t *testing.T) {
	if got := run([]string{"-checks", "nosuchcheck", "."}, io.Discard); got != 2 {
		t.Fatalf("run with unknown check = %d, want 2", got)
	}
}

func TestRunBadPattern(t *testing.T) {
	if got := run([]string{"./no/such/dir"}, io.Discard); got != 2 {
		t.Fatalf("run with missing dir = %d, want 2", got)
	}
}

// TestRunJSONFindings pins the machine-readable output contract the CI
// gate parses: a JSON array of {file, line, col, check, message}, exit
// status 1 when findings exist.
func TestRunJSONFindings(t *testing.T) {
	var buf bytes.Buffer
	got := run([]string{"-json", "-checks", "floatcmp", "../../internal/analysis/testdata/src/floatcmp"}, &buf)
	if got != 1 {
		t.Fatalf("run -json on fixture = %d, want 1", got)
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(buf.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, buf.String())
	}
	if len(diags) == 0 {
		t.Fatal("JSON output has no findings for the floatcmp fixture")
	}
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Check != "floatcmp" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestRunJSONClean pins the zero-findings shape: an empty array, not
// null, so `jq length`-style consumers need no special case.
func TestRunJSONClean(t *testing.T) {
	var buf bytes.Buffer
	if got := run([]string{"-json", "-checks", "floatcmp", "../../internal/mat"}, &buf); got != 0 {
		t.Fatalf("run -json on clean package = %d, want 0", got)
	}
	if s := string(bytes.TrimSpace(buf.Bytes())); s != "[]" {
		t.Fatalf("clean -json output = %q, want []", s)
	}
}
