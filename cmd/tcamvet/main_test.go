package main

import "testing"

func TestRunCleanPackage(t *testing.T) {
	if got := run([]string{"-checks", "floatcmp", "../../internal/mat"}); got != 0 {
		t.Fatalf("run on clean package = %d, want 0", got)
	}
}

func TestRunFindingsExitOne(t *testing.T) {
	if got := run([]string{"-checks", "floatcmp", "../../internal/analysis/testdata/src/floatcmp"}); got != 1 {
		t.Fatalf("run on fixture = %d, want 1", got)
	}
}

func TestRunUnknownCheck(t *testing.T) {
	if got := run([]string{"-checks", "nosuchcheck", "."}); got != 2 {
		t.Fatalf("run with unknown check = %d, want 2", got)
	}
}

func TestRunBadPattern(t *testing.T) {
	if got := run([]string{"./no/such/dir"}); got != 2 {
		t.Fatalf("run with missing dir = %d, want 2", got)
	}
}
