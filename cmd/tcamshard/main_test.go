package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"tcam"
	"tcam/internal/index"
	"tcam/internal/server"
	"tcam/internal/shard"
)

// trainedBundle trains and saves a small bundle: 6 users, 5 items.
func trainedBundle(t *testing.T) string {
	t.Helper()
	ds := tcam.NewDataset()
	for day := int64(0); day < 5; day++ {
		for u := 0; u < 6; u++ {
			if err := ds.Add(fmt.Sprintf("user%d", u), fmt.Sprintf("item-%d", day), day, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	opts := tcam.DefaultOptions()
	opts.K1, opts.K2, opts.MaxIters = 3, 3, 8
	rec, err := tcam.Train(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.tcam")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func TestParseWindow(t *testing.T) {
	if lo, hi, err := parseWindow("3-9"); err != nil || lo != 3 || hi != 9 {
		t.Errorf(`parseWindow("3-9") = %d,%d,%v`, lo, hi, err)
	}
	for _, bad := range []string{"", "5", "a-b", "3-"} {
		if _, _, err := parseWindow(bad); err == nil {
			t.Errorf("parseWindow(%q) accepted", bad)
		}
	}
}

func TestParseShards(t *testing.T) {
	cfgs, err := parseShards("http://a=0-6,http://b=6-12", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].Items != (shard.Range{Lo: 0, Hi: 6}) || cfgs[1].BaseURL != "http://b" {
		t.Errorf("explicit windows parsed as %+v", cfgs)
	}

	cfgs, err = parseShards("http://a,http://b", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].Items != (shard.Range{Lo: 0, Hi: 5}) || cfgs[1].Items != (shard.Range{Lo: 5, Hi: 10}) {
		t.Errorf("auto partition parsed as %+v", cfgs)
	}

	for _, bad := range []struct {
		spec    string
		catalog int
	}{
		{"", 0},
		{"http://a,http://b=0-5", 10}, // mixed forms
		{"http://a,http://b", 0},      // bare entries, no catalog
		{"http://a=0-x", 0},
	} {
		if _, err := parseShards(bad.spec, bad.catalog); err == nil {
			t.Errorf("parseShards(%q, %d) accepted", bad.spec, bad.catalog)
		}
	}
}

func TestBuildShardServesWindow(t *testing.T) {
	srv, b, err := buildShard(config{
		bundlePath: trainedBundle(t),
		items:      "0-3",
		logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Items) != 5 {
		t.Fatalf("bundle items = %d, want 5", len(b.Items))
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/shard/query", "application/json",
		strings.NewReader(`{"user":"user2","time":3,"k":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard query status %d", resp.StatusCode)
	}
	var out struct {
		ItemLo  int `json:"item_lo"`
		ItemHi  int `json:"item_hi"`
		Results []struct {
			Item int `json:"item"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ItemLo != 0 || out.ItemHi != 3 {
		t.Errorf("window = [%d,%d), want [0,3)", out.ItemLo, out.ItemHi)
	}
	for _, r := range out.Results {
		if r.Item < 0 || r.Item >= 3 {
			t.Errorf("item %d outside the shard window", r.Item)
		}
	}
}

func TestBuildShardErrors(t *testing.T) {
	if _, _, err := buildShard(config{items: "0-3"}); err == nil {
		t.Error("missing -bundle accepted")
	}
	if _, _, err := buildShard(config{bundlePath: trainedBundle(t), items: "0-99"}); err == nil {
		t.Error("window beyond the catalog accepted")
	}
}

// End to end: a coordinator process (via run) in front of two live
// shard servers answers /recommend, and degrades when a shard dies.
func TestRunCoordinatorEndToEnd(t *testing.T) {
	bundlePath := trainedBundle(t)
	b, err := index.Load(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	ranges := shard.Partition(len(b.Items), 2)
	var spec []string
	var shardServers []*httptest.Server
	for _, r := range ranges {
		srv, err := server.New(b, server.WithItemRange(r.Lo, r.Hi))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		shardServers = append(shardServers, ts)
		spec = append(spec, fmt.Sprintf("%s=%d-%d", ts.URL, r.Lo, r.Hi))
	}

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(config{
			mode:         "coordinator",
			addr:         "127.0.0.1:0",
			shards:       strings.Join(spec, ","),
			shardTimeout: 2 * time.Second,
			drainTimeout: 5 * time.Second,
			logger:       quietLogger(),
			onReady:      func(addr string) { ready <- addr },
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	}

	fetch := func() (int, map[string]interface{}) {
		t.Helper()
		resp, err := http.Get("http://" + addr + "/recommend?user=user2&time=3&k=4")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	code, out := fetch()
	if code != http.StatusOK || out["degraded"] != nil {
		t.Fatalf("healthy fleet: status %d, body %v", code, out)
	}

	// Kill one shard: the same query degrades instead of failing.
	shardServers[1].Close()
	code, out = fetch()
	if code != http.StatusOK || out["degraded"] != true {
		t.Fatalf("one shard down: status %d, body %v", code, out)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain after SIGTERM")
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	if err := run(config{mode: "banana", logger: quietLogger()}); err == nil {
		t.Error("bad mode accepted")
	}
	if err := run(config{mode: "coordinator", logger: quietLogger()}); err == nil {
		t.Error("coordinator without shards accepted")
	}
}
