// Command tcamshard runs the sharded serving tier (DESIGN.md §14) in
// one of two modes:
//
//	shard        a tcamserver whose TA index covers only the item
//	             window -items; serves /shard/query for a coordinator
//	             plus the full single-node API over its window
//	coordinator  the scatter-gather front: fans /recommend out to the
//	             fleet in -shards, merges the partial top-k lists, and
//	             degrades gracefully when shards are down
//
// Usage:
//
//	tcamshard -mode shard -bundle digg.tcam -items 0-50000 [-addr :8081]
//	tcamshard -mode coordinator -shards http://h1:8081=0-50000,http://h2:8081=50000-100000
//	tcamshard -mode coordinator -shards http://h1:8081,http://h2:8081 -catalog 100000
//
// The second coordinator form splits -catalog items across the listed
// shards with the same ceil-chunk partition the deploy scripts use for
// -items. Signals: SIGINT/SIGTERM drain and exit; SIGHUP hot-reloads
// the bundle (shard mode only).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tcam/internal/client"
	"tcam/internal/index"
	"tcam/internal/server"
	"tcam/internal/shard"
)

// config carries everything run needs; flags populate it in main and
// tests populate it directly.
type config struct {
	mode string
	addr string

	// shard mode
	bundlePath string
	items      string

	// coordinator mode
	shards           string
	catalog          int
	shardTimeout     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	hedgeQuantile    float64
	hedgeDefault     time.Duration
	seed             int64
	cacheEntries     int

	drainTimeout time.Duration

	logger  *log.Logger
	onReady func(addr string) // test hook: fires once the listener is bound
}

func main() {
	cfg := config{logger: log.New(os.Stderr, "tcamshard ", log.LstdFlags)}
	flag.StringVar(&cfg.mode, "mode", "", `"shard" or "coordinator" (required)`)
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.bundlePath, "bundle", "", "trained bundle path (shard mode)")
	flag.StringVar(&cfg.items, "items", "", `item window "lo-hi" this shard serves (shard mode)`)
	flag.StringVar(&cfg.shards, "shards", "", `comma-separated shard base URLs, each optionally "url=lo-hi" (coordinator mode)`)
	flag.IntVar(&cfg.catalog, "catalog", 0, "catalog size to auto-partition across -shards without windows")
	flag.DurationVar(&cfg.shardTimeout, "shard-timeout", 2*time.Second, "per-shard deadline budget per request")
	flag.IntVar(&cfg.breakerThreshold, "breaker-threshold", 5, "consecutive failures that trip a shard's circuit breaker")
	flag.DurationVar(&cfg.breakerCooldown, "breaker-cooldown", time.Second, "open-breaker cooldown before a recovery probe")
	flag.Float64Var(&cfg.hedgeQuantile, "hedge-quantile", 0.9, "latency quantile after which a backup request fires")
	flag.DurationVar(&cfg.hedgeDefault, "hedge-default", 50*time.Millisecond, "hedge delay until the latency window warms up")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for breaker probe jitter")
	flag.IntVar(&cfg.cacheEntries, "cache-entries", 0, "merged-result cache capacity in entries, epoch-versioned by the observed fleet state (coordinator mode, 0 disables)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "graceful shutdown deadline for in-flight requests")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tcamshard:", err)
		os.Exit(1)
	}
}

// run serves until SIGINT/SIGTERM, then drains and returns. In shard
// mode SIGHUP hot-reloads the bundle in between.
func run(cfg config) error {
	var handler http.Handler
	var srv *server.Server // non-nil in shard mode: drain + reload surface
	switch cfg.mode {
	case "shard":
		s, b, err := buildShard(cfg)
		if err != nil {
			return err
		}
		lo, hi, _ := parseWindow(cfg.items)
		cfg.logf("shard mode: %s bundle, items [%d,%d) of %d", b.Kind, lo, hi, len(b.Items))
		handler, srv = s, s
	case "coordinator":
		c, err := buildCoordinator(cfg)
		if err != nil {
			return err
		}
		cfg.logf("coordinator mode: %d shards", strings.Count(cfg.shards, ",")+1)
		handler = c
	default:
		return fmt.Errorf(`-mode must be "shard" or "coordinator"`)
	}

	httpSrv := &http.Server{
		Handler:           handler,
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          cfg.logger,
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sigs)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	cfg.logf("listening on %s", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	if cfg.onReady != nil {
		cfg.onReady(ln.Addr().String())
	}

	for {
		select {
		case err := <-serveErr:
			return err // listener died without a shutdown signal
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				if srv == nil {
					cfg.logf("SIGHUP ignored: coordinator has no bundle to reload")
					continue
				}
				if v, err := srv.ReloadFromSource(); err != nil {
					cfg.logf("SIGHUP reload failed: %v", err)
				} else {
					cfg.logf("SIGHUP reload ok: bundle version %d", v)
				}
				continue
			}
			cfg.logf("%s: draining (deadline %s)", sig, cfg.drainTimeout)
			if srv != nil {
				srv.StartDrain()
			}
			ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
			err := httpSrv.Shutdown(ctx)
			cancel()
			if serveResult := <-serveErr; !errors.Is(serveResult, http.ErrServerClosed) {
				return serveResult
			}
			if err != nil {
				return fmt.Errorf("drain deadline exceeded: %w", err)
			}
			cfg.logf("drained cleanly")
			return nil
		}
	}
}

func (cfg config) logf(format string, args ...interface{}) {
	if cfg.logger != nil {
		cfg.logger.Printf(format, args...)
	}
}

// buildShard loads the bundle and constructs a shard-mode server over
// the -items window, with a reloader re-reading -bundle.
func buildShard(cfg config) (*server.Server, *index.Bundle, error) {
	if cfg.bundlePath == "" {
		return nil, nil, fmt.Errorf("-bundle is required in shard mode")
	}
	lo, hi, err := parseWindow(cfg.items)
	if err != nil {
		return nil, nil, err
	}
	b, err := index.Load(cfg.bundlePath)
	if err != nil {
		return nil, nil, err
	}
	opts := []server.Option{
		server.WithItemRange(lo, hi),
		server.WithReloader(func() (*index.Bundle, error) { return index.Load(cfg.bundlePath) }),
	}
	if cfg.logger != nil {
		opts = append(opts, server.WithLogger(cfg.logger))
	}
	srv, err := server.New(b, opts...)
	if err != nil {
		return nil, nil, err
	}
	return srv, b, nil
}

// buildCoordinator assembles the fleet from -shards (and -catalog for
// the window-less form) and wires the failure-discipline knobs.
func buildCoordinator(cfg config) (*shard.Coordinator, error) {
	shards, err := parseShards(cfg.shards, cfg.catalog)
	if err != nil {
		return nil, err
	}
	return shard.New(shard.Config{
		Shards:       shards,
		ShardTimeout: cfg.shardTimeout,
		Breaker: client.BreakerConfig{
			FailureThreshold: cfg.breakerThreshold,
			OpenTimeout:      cfg.breakerCooldown,
			Seed:             cfg.seed,
		},
		Hedger: client.HedgerConfig{
			Quantile: cfg.hedgeQuantile,
			Default:  cfg.hedgeDefault,
		},
		Logger:       cfg.logger,
		CacheEntries: cfg.cacheEntries,
	})
}

// parseWindow reads an "lo-hi" item window.
func parseWindow(s string) (lo, hi int, err error) {
	rawLo, rawHi, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf(`-items must be "lo-hi", got %q`, s)
	}
	lo, err = strconv.Atoi(rawLo)
	if err != nil {
		return 0, 0, fmt.Errorf("bad item window %q: %v", s, err)
	}
	hi, err = strconv.Atoi(rawHi)
	if err != nil {
		return 0, 0, fmt.Errorf("bad item window %q: %v", s, err)
	}
	return lo, hi, nil
}

// parseShards turns the -shards spec into the coordinator's fleet.
// Either every entry carries an explicit "url=lo-hi" window, or none
// does and -catalog splits the item space across them.
func parseShards(spec string, catalog int) ([]shard.ShardConfig, error) {
	if spec == "" {
		return nil, fmt.Errorf("-shards is required in coordinator mode")
	}
	var bare []string
	var explicit []shard.ShardConfig
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if url, window, ok := strings.Cut(entry, "="); ok {
			lo, hi, err := parseWindow(window)
			if err != nil {
				return nil, fmt.Errorf("shard %q: %v", entry, err)
			}
			explicit = append(explicit, shard.ShardConfig{BaseURL: url, Items: shard.Range{Lo: lo, Hi: hi}})
			continue
		}
		bare = append(bare, entry)
	}
	switch {
	case len(explicit) > 0 && len(bare) > 0:
		return nil, fmt.Errorf("-shards mixes windowed (url=lo-hi) and bare entries; use one form")
	case len(explicit) > 0:
		return explicit, nil
	case catalog <= 0:
		return nil, fmt.Errorf("-catalog is required when -shards entries carry no =lo-hi windows")
	default:
		return shard.FleetConfigs(catalog, bare), nil
	}
}
