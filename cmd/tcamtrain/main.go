// Command tcamtrain fits a TCAM on a JSONL interaction log and writes a
// deployment bundle (model parameters, time grid, vocabularies) that
// tcamquery and tcamserver consume.
//
// Usage:
//
//	tcamtrain -in digg.jsonl -out digg.tcam [-variant ttcam|itcam]
//	          [-interval 3] [-k1 60] [-k2 40] [-iters 50] [-weighted]
//	          [-background 0] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tcam"
)

func main() {
	var (
		in         = flag.String("in", "", "input JSONL interaction log (required)")
		out        = flag.String("out", "", "output bundle path (required)")
		variant    = flag.String("variant", "ttcam", "TCAM variant: ttcam | itcam")
		interval   = flag.Int64("interval", 1, "time-interval length in dataset ticks (e.g. days)")
		k1         = flag.Int("k1", 60, "number of user-oriented topics")
		k2         = flag.Int("k2", 40, "number of time-oriented topics (ttcam)")
		iters      = flag.Int("iters", 50, "max EM iterations")
		weighted   = flag.Bool("weighted", true, "apply the Section 3.3 item-weighting scheme (W- variants)")
		background = flag.Float64("background", 0, "background-topic weight (ttcam extension; 0 = off)")
		seed       = flag.Int64("seed", 1, "training seed")
		workers    = flag.Int("workers", 0, "EM parallelism (0 = all CPUs)")
	)
	flag.Parse()
	if err := run(*in, *out, *variant, *interval, *k1, *k2, *iters, *weighted, *background, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "tcamtrain:", err)
		os.Exit(1)
	}
}

func run(in, out, variant string, interval int64, k1, k2, iters int, weighted bool, background float64, seed int64, workers int) error {
	if in == "" || out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	log, err := tcam.LoadDataset(in)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s: %d users, %d items, %d events\n", in, log.NumUsers(), log.NumItems(), log.NumEvents())

	opts := tcam.Options{
		Variant:        tcam.Variant(variant),
		IntervalLength: interval,
		K1:             k1,
		K2:             k2,
		Weighted:       weighted,
		Background:     background,
		MaxIters:       iters,
		Seed:           seed,
		Workers:        workers,
	}
	start := time.Now()
	rec, err := tcam.Train(log, opts)
	if err != nil {
		return err
	}
	fmt.Printf("trained %s (K1=%d K2=%d weighted=%v) in %v\n", variant, k1, k2, weighted, time.Since(start).Round(time.Millisecond))
	if err := rec.Save(out); err != nil {
		return err
	}
	fmt.Printf("wrote bundle %s (%d expanded topics, grid %d intervals)\n", out, rec.NumTopics(), rec.Grid().Num)
	return nil
}
