// Command tcamtrain fits a TCAM on a JSONL interaction log and writes a
// deployment bundle (model parameters, time grid, vocabularies) that
// tcamquery and tcamserver consume.
//
// Usage:
//
//	tcamtrain -in digg.jsonl -out digg.tcam [-variant ttcam|itcam]
//	          [-interval 3] [-k1 60] [-k2 40] [-iters 50] [-weighted]
//	          [-background 0] [-seed 1] [-tol 0] [-progress]
//	          [-checkpoint dir] [-checkpoint-every 1] [-resume]
//	          [-train-log out.jsonl] [-cpuprofile cpu.pprof]
//	          [-memprofile mem.pprof]
//
// Long runs are resumable: -checkpoint snapshots the parameter state
// every -checkpoint-every iterations, and rerunning with -resume
// continues from the latest snapshot to the exact parameters an
// uninterrupted run would have produced. -train-log streams one JSON
// record per EM iteration (log-likelihood, delta, E/M-step wall-time
// split); -progress prints the same to stdout.
//
// -cpuprofile and -memprofile write pprof profiles covering the
// training run (dataset loading and bundle writing excluded), for
// inspecting where EM iteration time and steady-state memory go.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"tcam"
	"tcam/internal/model"
)

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.in, "in", "", "input JSONL interaction log (required)")
	flag.StringVar(&cfg.out, "out", "", "output bundle path (required)")
	flag.StringVar(&cfg.variant, "variant", "ttcam", "TCAM variant: ttcam | itcam")
	flag.Int64Var(&cfg.interval, "interval", 1, "time-interval length in dataset ticks (e.g. days)")
	flag.IntVar(&cfg.k1, "k1", 60, "number of user-oriented topics")
	flag.IntVar(&cfg.k2, "k2", 40, "number of time-oriented topics (ttcam)")
	flag.IntVar(&cfg.iters, "iters", 50, "max EM iterations")
	flag.BoolVar(&cfg.weighted, "weighted", true, "apply the Section 3.3 item-weighting scheme (W- variants)")
	flag.Float64Var(&cfg.background, "background", 0, "background-topic weight (ttcam extension; 0 = off)")
	flag.Int64Var(&cfg.seed, "seed", 1, "training seed")
	flag.IntVar(&cfg.workers, "workers", 0, "EM parallelism (0 = all CPUs; never affects the result)")
	flag.Float64Var(&cfg.tol, "tol", 0, "relative log-likelihood early-stop tolerance (0 = model default, negative = run every iteration)")
	flag.StringVar(&cfg.checkpoint, "checkpoint", "", "checkpoint directory (empty = no checkpoints)")
	flag.IntVar(&cfg.checkpointEvery, "checkpoint-every", 1, "snapshot period in iterations")
	flag.BoolVar(&cfg.resume, "resume", false, "resume from the latest checkpoint in -checkpoint")
	flag.StringVar(&cfg.trainLog, "train-log", "", "write one JSON record per EM iteration to this file")
	flag.BoolVar(&cfg.progress, "progress", false, "print per-iteration training progress")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile of the training run to this file")
	flag.StringVar(&cfg.memProfile, "memprofile", "", "write a post-training heap profile to this file")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tcamtrain:", err)
		os.Exit(1)
	}
}

// runConfig carries every flag so tests can drive run directly.
type runConfig struct {
	in, out         string
	variant         string
	interval        int64
	k1, k2          int
	iters           int
	weighted        bool
	background      float64
	seed            int64
	workers         int
	tol             float64
	checkpoint      string
	checkpointEvery int
	resume          bool
	trainLog        string
	progress        bool
	cpuProfile      string
	memProfile      string
}

// iterRecord is the -train-log JSONL schema: one record per completed
// EM iteration.
type iterRecord struct {
	Iter    int     `json:"iter"`
	LL      float64 `json:"ll"`
	Delta   float64 `json:"delta"`
	EStepMS float64 `json:"estep_ms"`
	MStepMS float64 `json:"mstep_ms"`
	WallMS  float64 `json:"wall_ms"`
}

func run(cfg runConfig) error {
	if cfg.in == "" || cfg.out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	if cfg.resume && cfg.checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	log, err := tcam.LoadDataset(cfg.in)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s: %d users, %d items, %d events\n", cfg.in, log.NumUsers(), log.NumItems(), log.NumEvents())

	var trainLog *os.File
	var encodeErr error
	var enc *json.Encoder
	if cfg.trainLog != "" {
		trainLog, err = os.Create(cfg.trainLog)
		if err != nil {
			return fmt.Errorf("create train log: %w", err)
		}
		enc = json.NewEncoder(trainLog)
	}
	hook := func(it model.IterStat) {
		if enc != nil && encodeErr == nil {
			encodeErr = enc.Encode(iterRecord{
				Iter:    it.Iter,
				LL:      it.LogLikelihood,
				Delta:   it.Delta,
				EStepMS: float64(it.EStep) / float64(time.Millisecond),
				MStepMS: float64(it.MStep) / float64(time.Millisecond),
				WallMS:  float64(it.Wall) / float64(time.Millisecond),
			})
		}
		if cfg.progress {
			fmt.Printf("iter %3d  ll %.6f  delta %.3e  estep %v  mstep %v\n",
				it.Iter, it.LogLikelihood, it.Delta,
				it.EStep.Round(time.Microsecond), it.MStep.Round(time.Microsecond))
		}
	}

	opts := tcam.Options{
		Variant:         tcam.Variant(cfg.variant),
		IntervalLength:  cfg.interval,
		K1:              cfg.k1,
		K2:              cfg.k2,
		Weighted:        cfg.weighted,
		Background:      cfg.background,
		MaxIters:        cfg.iters,
		Seed:            cfg.seed,
		Workers:         cfg.workers,
		Tol:             cfg.tol,
		CheckpointDir:   cfg.checkpoint,
		CheckpointEvery: cfg.checkpointEvery,
		Resume:          cfg.resume,
		Progress:        hook,
	}
	stopCPU, err := startCPUProfile(cfg.cpuProfile)
	if err != nil {
		return err
	}
	start := time.Now()
	rec, err := tcam.Train(log, opts)
	stopCPU()
	if memErr := writeMemProfile(cfg.memProfile); memErr != nil && err == nil {
		err = memErr
	}
	if trainLog != nil {
		if closeErr := trainLog.Close(); closeErr != nil && err == nil {
			err = fmt.Errorf("close train log: %w", closeErr)
		}
	}
	if err != nil {
		return err
	}
	if encodeErr != nil {
		return fmt.Errorf("write train log: %w", encodeErr)
	}
	fmt.Printf("trained %s (K1=%d K2=%d weighted=%v) in %v\n", cfg.variant, cfg.k1, cfg.k2, cfg.weighted, time.Since(start).Round(time.Millisecond))
	if err := rec.Save(cfg.out); err != nil {
		return err
	}
	fmt.Printf("wrote bundle %s (%d expanded topics, grid %d intervals)\n", cfg.out, rec.NumTopics(), rec.Grid().Num)
	return nil
}

// startCPUProfile begins CPU profiling into path and returns the stop
// function; an empty path is a no-op.
func startCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		if closeErr := f.Close(); closeErr != nil {
			fmt.Fprintln(os.Stderr, "tcamtrain: close cpu profile:", closeErr)
		}
		return nil, fmt.Errorf("start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tcamtrain: close cpu profile:", err)
		}
	}, nil
}

// writeMemProfile snapshots the post-training heap (after a GC, so the
// profile shows steady-state retention rather than garbage) into path;
// an empty path is a no-op.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create mem profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		if closeErr := f.Close(); closeErr != nil {
			fmt.Fprintln(os.Stderr, "tcamtrain: close mem profile:", closeErr)
		}
		return fmt.Errorf("write mem profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close mem profile: %w", err)
	}
	return nil
}
