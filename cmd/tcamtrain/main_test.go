package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"tcam"
)

func writeTestLog(t *testing.T) string {
	t.Helper()
	log := tcam.NewDataset()
	for day := int64(0); day < 8; day++ {
		for u := 0; u < 10; u++ {
			user := fmt.Sprintf("u%02d", u)
			if err := log.Add(user, fmt.Sprintf("hot-%d", day), day, 1); err != nil {
				t.Fatal(err)
			}
			if err := log.Add(user, fmt.Sprintf("pet-%d", u%3), day, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "log.jsonl")
	if err := log.SaveJSONLFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// baseConfig is the shared test configuration; tests override fields.
func baseConfig(in, out string) runConfig {
	return runConfig{
		in:       in,
		out:      out,
		variant:  "ttcam",
		interval: 1,
		k1:       4,
		k2:       3,
		iters:    10,
		weighted: true,
		seed:     1,
		workers:  2,
	}
}

func TestTrainRoundtrip(t *testing.T) {
	in := writeTestLog(t)
	out := filepath.Join(t.TempDir(), "model.tcam")
	if err := run(baseConfig(in, out)); err != nil {
		t.Fatal(err)
	}
	rec, err := tcam.LoadRecommender(out)
	if err != nil {
		t.Fatal(err)
	}
	top, err := rec.Recommend("u03", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Errorf("got %d recommendations", len(top))
	}
}

func TestTrainITCAMVariant(t *testing.T) {
	in := writeTestLog(t)
	out := filepath.Join(t.TempDir(), "model.tcam")
	cfg := baseConfig(in, out)
	cfg.variant = "itcam"
	cfg.interval = 2
	cfg.k2 = 0
	cfg.weighted = false
	cfg.workers = 1
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := tcam.LoadRecommender(out); err != nil {
		t.Fatal(err)
	}
}

func TestTrainErrors(t *testing.T) {
	in := writeTestLog(t)
	for _, tc := range []struct {
		name string
		mut  func(*runConfig)
	}{
		{"empty input", func(c *runConfig) { c.in = "" }},
		{"empty output", func(c *runConfig) { c.out = "" }},
		{"missing input file", func(c *runConfig) { c.in = filepath.Join(t.TempDir(), "missing.jsonl") }},
		{"unknown variant", func(c *runConfig) { c.variant = "bogus" }},
		{"resume without checkpoint dir", func(c *runConfig) { c.resume = true }},
	} {
		cfg := baseConfig(in, filepath.Join(t.TempDir(), "x"))
		cfg.workers = 1
		tc.mut(&cfg)
		if err := run(cfg); err == nil {
			t.Errorf("run accepted %s", tc.name)
		}
	}
}

// sameRecommender probes both bundles across every user and a spread of
// query times and requires bit-identical scores and identical rankings.
func sameRecommender(t *testing.T, label string, a, b *tcam.Recommender) {
	t.Helper()
	for u := 0; u < 10; u++ {
		user := fmt.Sprintf("u%02d", u)
		la, err := a.Lambda(user)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := b.Lambda(user)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(la) != math.Float64bits(lb) {
			t.Fatalf("%s: lambda(%s) differs: %v vs %v", label, user, la, lb)
		}
		for _, when := range []int64{0, 3, 7} {
			ra, err := a.Recommend(user, when, 5)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := b.Recommend(user, when, 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(ra) != len(rb) {
				t.Fatalf("%s: %s@%d: %d vs %d recommendations", label, user, when, len(ra), len(rb))
			}
			for i := range ra {
				if ra[i].ItemID != rb[i].ItemID ||
					math.Float64bits(ra[i].Score) != math.Float64bits(rb[i].Score) {
					t.Fatalf("%s: %s@%d rank %d differs: %+v vs %+v", label, user, when, i, ra[i], rb[i])
				}
			}
		}
	}
}

// TestCheckpointResumeEndToEnd exercises the ISSUE acceptance path
// through the CLI layer: train with -checkpoint for a truncated run,
// rerun with -resume, and require the resumed bundle to match an
// uninterrupted run's bundle bit-for-bit.
func TestCheckpointResumeEndToEnd(t *testing.T) {
	in := writeTestLog(t)
	dir := t.TempDir()

	refOut := filepath.Join(dir, "ref.tcam")
	ref := baseConfig(in, refOut)
	ref.iters = 12
	ref.tol = -1 // disable early stop so both runs burn all 12 iterations
	if err := run(ref); err != nil {
		t.Fatal(err)
	}

	ckptDir := filepath.Join(dir, "ckpt")
	phase1 := baseConfig(in, filepath.Join(dir, "phase1.tcam"))
	phase1.iters = 6
	phase1.tol = -1
	phase1.checkpoint = ckptDir
	if err := run(phase1); err != nil {
		t.Fatal(err)
	}

	resumedOut := filepath.Join(dir, "resumed.tcam")
	phase2 := phase1
	phase2.out = resumedOut
	phase2.iters = 12
	phase2.resume = true
	if err := run(phase2); err != nil {
		t.Fatal(err)
	}

	refRec, err := tcam.LoadRecommender(refOut)
	if err != nil {
		t.Fatal(err)
	}
	gotRec, err := tcam.LoadRecommender(resumedOut)
	if err != nil {
		t.Fatal(err)
	}
	sameRecommender(t, "resume vs uninterrupted", refRec, gotRec)
}

// TestTrainLogJSONL checks -train-log writes exactly one valid record
// per EM iteration with monotonically increasing iteration numbers.
func TestTrainLogJSONL(t *testing.T) {
	in := writeTestLog(t)
	dir := t.TempDir()
	cfg := baseConfig(in, filepath.Join(dir, "model.tcam"))
	cfg.iters = 7
	cfg.tol = -1
	cfg.trainLog = filepath.Join(dir, "train.jsonl")
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(cfg.trainLog)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var records []iterRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec iterRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", len(records)+1, err)
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(records) != cfg.iters {
		t.Fatalf("got %d train-log records, want %d", len(records), cfg.iters)
	}
	for i, rec := range records {
		if rec.Iter != i+1 {
			t.Errorf("record %d has iter %d", i, rec.Iter)
		}
		if math.IsNaN(rec.LL) || rec.LL >= 0 {
			t.Errorf("record %d has implausible log-likelihood %v", i, rec.LL)
		}
		if rec.WallMS < 0 {
			t.Errorf("record %d has negative wall time", i)
		}
	}
}
