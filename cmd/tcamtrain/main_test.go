package main

import (
	"fmt"
	"path/filepath"
	"testing"

	"tcam"
)

func writeTestLog(t *testing.T) string {
	t.Helper()
	log := tcam.NewDataset()
	for day := int64(0); day < 8; day++ {
		for u := 0; u < 10; u++ {
			user := fmt.Sprintf("u%02d", u)
			if err := log.Add(user, fmt.Sprintf("hot-%d", day), day, 1); err != nil {
				t.Fatal(err)
			}
			if err := log.Add(user, fmt.Sprintf("pet-%d", u%3), day, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "log.jsonl")
	if err := log.SaveJSONLFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrainRoundtrip(t *testing.T) {
	in := writeTestLog(t)
	out := filepath.Join(t.TempDir(), "model.tcam")
	if err := run(in, out, "ttcam", 1, 4, 3, 10, true, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	rec, err := tcam.LoadRecommender(out)
	if err != nil {
		t.Fatal(err)
	}
	top, err := rec.Recommend("u03", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Errorf("got %d recommendations", len(top))
	}
}

func TestTrainITCAMVariant(t *testing.T) {
	in := writeTestLog(t)
	out := filepath.Join(t.TempDir(), "model.tcam")
	if err := run(in, out, "itcam", 2, 4, 0, 10, false, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tcam.LoadRecommender(out); err != nil {
		t.Fatal(err)
	}
}

func TestTrainErrors(t *testing.T) {
	if err := run("", "out", "ttcam", 1, 4, 3, 10, true, 0, 1, 1); err == nil {
		t.Error("run accepted empty input")
	}
	if err := run("in", "", "ttcam", 1, 4, 3, 10, true, 0, 1, 1); err == nil {
		t.Error("run accepted empty output")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.jsonl"), "out", "ttcam", 1, 4, 3, 10, true, 0, 1, 1); err == nil {
		t.Error("run accepted missing input file")
	}
	in := writeTestLog(t)
	if err := run(in, filepath.Join(t.TempDir(), "x"), "bogus", 1, 4, 3, 10, true, 0, 1, 1); err == nil {
		t.Error("run accepted unknown variant")
	}
}
