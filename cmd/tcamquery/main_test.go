package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"tcam"
	"tcam/internal/client"
	"tcam/internal/index"
	"tcam/internal/ingest"
	"tcam/internal/server"
	"tcam/internal/shard"
)

func trainedBundle(t *testing.T) string {
	t.Helper()
	log := tcam.NewDataset()
	for day := int64(0); day < 6; day++ {
		for u := 0; u < 8; u++ {
			user := fmt.Sprintf("user%d", u)
			if err := log.Add(user, fmt.Sprintf("item-%d", day), day, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	opts := tcam.DefaultOptions()
	opts.K1, opts.K2, opts.MaxIters = 3, 3, 10
	rec, err := tcam.Train(log, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.tcam")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestQueryRun(t *testing.T) {
	bundle := trainedBundle(t)
	if err := run(bundle, "user3", 2, 3, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(bundle, "user3", 2, 3, "item-0,item-1"); err != nil {
		t.Fatal(err)
	}
}

func TestQueryErrors(t *testing.T) {
	bundle := trainedBundle(t)
	if err := run("", "user3", 0, 3, ""); err == nil {
		t.Error("run accepted empty bundle path")
	}
	if err := run(bundle, "", 0, 3, ""); err == nil {
		t.Error("run accepted empty user")
	}
	if err := run(bundle, "nobody", 0, 3, ""); err == nil {
		t.Error("run accepted unknown user")
	}
	if err := run(filepath.Join(t.TempDir(), "missing"), "user3", 0, 3, ""); err == nil {
		t.Error("run accepted missing bundle")
	}
}

func TestQueryRunBatch(t *testing.T) {
	bundle := trainedBundle(t)
	if err := runBatch(bundle, "user3,user5,user0", 2, 3, ""); err != nil {
		t.Fatal(err)
	}
	if err := runBatch(bundle, "user3", 2, 3, "item-0,item-1"); err != nil {
		t.Fatal(err)
	}
}

// Remote mode runs the same queries through a live internal/server
// instance end to end: CLI → retrying client → HTTP → TA index.
func TestQueryRunRemote(t *testing.T) {
	b, err := index.Load(trainedBundle(t))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(b)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if err := runRemote(io.Discard, ts.URL, "user3", "", 2, 3, "", false); err != nil {
		t.Fatal(err)
	}
	if err := runRemote(io.Discard, ts.URL, "", "user3,user5,user0", 2, 3, "item-0", false); err != nil {
		t.Fatal(err)
	}
	if err := runRemote(io.Discard, ts.URL, "", "", 2, 3, "", false); err == nil {
		t.Error("runRemote accepted neither -user nor -users")
	}
	if err := runRemote(io.Discard, ts.URL, "nobody", "", 2, 3, "", false); err == nil {
		t.Error("runRemote accepted unknown user")
	}
	if err := runRemote(io.Discard, "", "user3", "", 2, 3, "", false); err == nil {
		t.Error("runRemote accepted empty server URL")
	}

	var buf bytes.Buffer
	if err := runRemote(&buf, ts.URL, "user3", "", 2, 3, "", true); err != nil {
		t.Fatal(err)
	}
	var res client.RecommendResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("-json output is not a RecommendResult: %v\n%s", err, buf.String())
	}
	if res.User != "user3" || len(res.Recommendations) == 0 || res.Degraded {
		t.Errorf("-json result: %+v", res)
	}
}

// A degraded coordinator answer must be flagged in the human output and
// carry the missing item ranges through -json untouched.
func TestQueryRunRemoteDegraded(t *testing.T) {
	b, err := index.Load(trainedBundle(t))
	if err != nil {
		t.Fatal(err)
	}
	ranges := shard.Partition(len(b.Items), 2)
	var cfgs []shard.ShardConfig
	var shardServers []*httptest.Server
	for _, r := range ranges {
		srv, err := server.New(b, server.WithItemRange(r.Lo, r.Hi))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		shardServers = append(shardServers, ts)
		cfgs = append(cfgs, shard.ShardConfig{BaseURL: ts.URL, Items: shard.Range{Lo: r.Lo, Hi: r.Hi}})
	}
	coord, err := shard.New(shard.Config{Shards: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord)
	defer front.Close()
	shardServers[1].Close() // second item window goes dark

	var human bytes.Buffer
	if err := runRemote(&human, front.URL, "user3", "", 2, 3, "", false); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("[%d,%d)", ranges[1].Lo, ranges[1].Hi)
	if !strings.Contains(human.String(), "degraded") || !strings.Contains(human.String(), want) {
		t.Errorf("human output lacks the degraded warning with range %s:\n%s", want, human.String())
	}

	var raw bytes.Buffer
	if err := runRemote(&raw, front.URL, "user3", "", 2, 3, "", true); err != nil {
		t.Fatal(err)
	}
	var res client.RecommendResult
	if err := json.Unmarshal(raw.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("-json output lost the degraded marker")
	}
	if len(res.MissingItemRanges) != 1 || res.MissingItemRanges[0] != (client.ItemRange{Lo: ranges[1].Lo, Hi: ranges[1].Hi}) {
		t.Errorf("-json missing_item_ranges = %+v, want [%s]", res.MissingItemRanges, want)
	}
}

func TestQueryRunBatchErrors(t *testing.T) {
	bundle := trainedBundle(t)
	if err := runBatch("", "user3", 0, 3, ""); err == nil {
		t.Error("runBatch accepted empty bundle path")
	}
	if err := runBatch(bundle, "user3,nobody", 0, 3, ""); err == nil {
		t.Error("runBatch accepted unknown user")
	}
	if err := runBatch(filepath.Join(t.TempDir(), "missing"), "user3", 0, 3, ""); err == nil {
		t.Error("runBatch accepted missing bundle")
	}
}

// -health surfaces the snapshot version and, when the server tails an
// ingest log, the offset/lag/staleness triple operators watch.
func TestQueryRunHealth(t *testing.T) {
	b, err := index.Load(trainedBundle(t))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(b)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var out bytes.Buffer
	if err := runHealth(&out, ts.URL, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "snapshot version 1") || !strings.Contains(out.String(), "no ingest log attached") {
		t.Errorf("static-bundle health output:\n%s", out.String())
	}

	// Attach an updater and fold one event in: the ingest block appears.
	lg, err := ingest.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	up, err := server.NewUpdater(srv, lg, b, server.UpdaterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Append(ingest.Record{User: "newcomer", Item: "item-2", Time: 1, Score: 1}); err != nil {
		t.Fatal(err)
	}
	if published, err := up.Step(); err != nil || !published {
		t.Fatalf("Step = (%v, %v)", published, err)
	}
	out.Reset()
	if err := runHealth(&out, ts.URL, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"snapshot version 2", "log offset 1 of 1 (lag 0)", "serving is current"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("health output lacks %q:\n%s", want, out.String())
		}
	}

	// -json emits the raw Health struct with the ingest block intact.
	out.Reset()
	if err := runHealth(&out, ts.URL, true); err != nil {
		t.Fatal(err)
	}
	var h client.Health
	if err := json.Unmarshal(out.Bytes(), &h); err != nil {
		t.Fatalf("-json output is not a Health: %v\n%s", err, out.String())
	}
	if h.Version != 2 || h.Ingest == nil || h.Ingest.LogOffset != 1 || h.Ingest.Lag != 0 {
		t.Errorf("-json health = %+v ingest=%+v", h, h.Ingest)
	}

	if err := runHealth(io.Discard, "", false); err == nil {
		t.Error("runHealth accepted empty server URL")
	}
}
