package main

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"tcam"
	"tcam/internal/index"
	"tcam/internal/server"
)

func trainedBundle(t *testing.T) string {
	t.Helper()
	log := tcam.NewDataset()
	for day := int64(0); day < 6; day++ {
		for u := 0; u < 8; u++ {
			user := fmt.Sprintf("user%d", u)
			if err := log.Add(user, fmt.Sprintf("item-%d", day), day, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	opts := tcam.DefaultOptions()
	opts.K1, opts.K2, opts.MaxIters = 3, 3, 10
	rec, err := tcam.Train(log, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.tcam")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestQueryRun(t *testing.T) {
	bundle := trainedBundle(t)
	if err := run(bundle, "user3", 2, 3, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(bundle, "user3", 2, 3, "item-0,item-1"); err != nil {
		t.Fatal(err)
	}
}

func TestQueryErrors(t *testing.T) {
	bundle := trainedBundle(t)
	if err := run("", "user3", 0, 3, ""); err == nil {
		t.Error("run accepted empty bundle path")
	}
	if err := run(bundle, "", 0, 3, ""); err == nil {
		t.Error("run accepted empty user")
	}
	if err := run(bundle, "nobody", 0, 3, ""); err == nil {
		t.Error("run accepted unknown user")
	}
	if err := run(filepath.Join(t.TempDir(), "missing"), "user3", 0, 3, ""); err == nil {
		t.Error("run accepted missing bundle")
	}
}

func TestQueryRunBatch(t *testing.T) {
	bundle := trainedBundle(t)
	if err := runBatch(bundle, "user3,user5,user0", 2, 3, ""); err != nil {
		t.Fatal(err)
	}
	if err := runBatch(bundle, "user3", 2, 3, "item-0,item-1"); err != nil {
		t.Fatal(err)
	}
}

// Remote mode runs the same queries through a live internal/server
// instance end to end: CLI → retrying client → HTTP → TA index.
func TestQueryRunRemote(t *testing.T) {
	b, err := index.Load(trainedBundle(t))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(b)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if err := runRemote(ts.URL, "user3", "", 2, 3, ""); err != nil {
		t.Fatal(err)
	}
	if err := runRemote(ts.URL, "", "user3,user5,user0", 2, 3, "item-0"); err != nil {
		t.Fatal(err)
	}
	if err := runRemote(ts.URL, "", "", 2, 3, ""); err == nil {
		t.Error("runRemote accepted neither -user nor -users")
	}
	if err := runRemote(ts.URL, "nobody", "", 2, 3, ""); err == nil {
		t.Error("runRemote accepted unknown user")
	}
	if err := runRemote("", "user3", "", 2, 3, ""); err == nil {
		t.Error("runRemote accepted empty server URL")
	}
}

func TestQueryRunBatchErrors(t *testing.T) {
	bundle := trainedBundle(t)
	if err := runBatch("", "user3", 0, 3, ""); err == nil {
		t.Error("runBatch accepted empty bundle path")
	}
	if err := runBatch(bundle, "user3,nobody", 0, 3, ""); err == nil {
		t.Error("runBatch accepted unknown user")
	}
	if err := runBatch(filepath.Join(t.TempDir(), "missing"), "user3", 0, 3, ""); err == nil {
		t.Error("runBatch accepted missing bundle")
	}
}
