package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcam/internal/client"
	"tcam/internal/index"
	"tcam/internal/server"
)

func writeWorkloadFile(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "load.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadWorkload(t *testing.T) {
	path := writeWorkloadFile(t,
		`{"user":"user3","time":2,"k":4,"exclude":["item-0"]}`,
		``,
		`{"user":"user5"}`,
	)
	queries, err := loadWorkload(path, 9, 7, []string{"item-1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 2 {
		t.Fatalf("got %d queries, want 2 (blank line skipped)", len(queries))
	}
	if q := queries[0]; q.User != "user3" || q.Time != 2 || q.K != 4 || len(q.Exclude) != 1 || q.Exclude[0] != "item-0" {
		t.Errorf("explicit record mangled: %+v", q)
	}
	// A record's missing time/k/exclude default from the flags.
	if q := queries[1]; q.User != "user5" || q.Time != 9 || q.K != 7 || len(q.Exclude) != 1 || q.Exclude[0] != "item-1" {
		t.Errorf("defaults not applied: %+v", q)
	}
}

func TestLoadWorkloadErrors(t *testing.T) {
	if _, err := loadWorkload(filepath.Join(t.TempDir(), "nope.jsonl"), 0, 10, nil); err == nil {
		t.Error("loadWorkload accepted a missing file")
	}
	if _, err := loadWorkload(writeWorkloadFile(t, `not json`), 0, 10, nil); err == nil {
		t.Error("loadWorkload accepted malformed JSON")
	}
	if _, err := loadWorkload(writeWorkloadFile(t, `{"time":3}`), 0, 10, nil); err == nil {
		t.Error("loadWorkload accepted a record without a user")
	}
	if _, err := loadWorkload(writeWorkloadFile(t, ``), 0, 10, nil); err == nil {
		t.Error("loadWorkload accepted an empty workload")
	}
}

// `-users @file` runs the workload as one batch in both modes; each
// record keeps its own time and k.
func TestRunBatchAndRemoteFromWorkloadFile(t *testing.T) {
	bundlePath := trainedBundle(t)
	path := writeWorkloadFile(t,
		`{"user":"user3","time":2,"k":3}`,
		`{"user":"user5","time":4,"k":2,"exclude":["item-0"]}`,
	)
	if err := runBatch(bundlePath, "@"+path, 0, 10, ""); err != nil {
		t.Fatal(err)
	}
	if err := runBatch(bundlePath, "@"+filepath.Join(t.TempDir(), "gone"), 0, 10, ""); err == nil {
		t.Error("runBatch accepted a missing workload file")
	}

	b, err := index.Load(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(b)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var buf bytes.Buffer
	if err := runRemote(&buf, ts.URL, "", "@"+path, 0, 10, "", true); err != nil {
		t.Fatal(err)
	}
	var batch client.BatchResult
	if err := json.Unmarshal(buf.Bytes(), &batch); err != nil {
		t.Fatalf("-json output is not a BatchResult: %v\n%s", err, buf.String())
	}
	if len(batch.Results) != 2 || batch.Results[0].User != "user3" || batch.Results[1].User != "user5" {
		t.Fatalf("batch results: %+v", batch.Results)
	}
	if got := len(batch.Results[1].Recommendations); got != 2 {
		t.Errorf("record-level k ignored: %d results, want 2", got)
	}
	if err := runRemote(io.Discard, ts.URL, "", "@"+filepath.Join(t.TempDir(), "gone"), 0, 10, "", false); err == nil {
		t.Error("runRemote accepted a missing workload file")
	}
}

// -health against a cache-enabled server prints the hit/miss line and
// the precompute line once a publish warmed users.
func TestRunHealthPrintsCache(t *testing.T) {
	b, err := index.Load(trainedBundle(t))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(b, server.WithCache(128), server.WithHotPrecompute(2))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// One miss then one hit, then a reload to trigger precompute.
	for i := 0; i < 2; i++ {
		if err := runRemote(io.Discard, ts.URL, "user3", "", 2, 3, "", false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Reload(b); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runHealth(&out, ts.URL, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cache: 1 hits / 1 misses (50.0% hit rate)", "epoch 2", "precomputed 1 hot users"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("health output lacks %q:\n%s", want, out.String())
		}
	}
}
