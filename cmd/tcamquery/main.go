// Command tcamquery answers temporal top-k queries from the command
// line, printing the ranked items with scores. It reads either a local
// trained bundle or a running tcamserver instance.
//
// Usage:
//
//	tcamquery -bundle digg.tcam -user u00042 -time 37 [-k 10] [-exclude item1,item2]
//	tcamquery -bundle digg.tcam -users u00042,u00091,u00007 -time 37 [-k 10]
//	tcamquery -server http://localhost:8080 -user u00042 -time 37 [-k 10]
//	tcamquery -server http://localhost:8080 -users u00042,u00091 -time 37
//	tcamquery -server http://localhost:8080 -users @load.jsonl
//	tcamquery -server http://localhost:8080 -health [-json]
//
// With -health, no query runs: the server's /healthz summary is
// printed instead — snapshot version and, when the server tails an
// ingest log, the log offset, lag and staleness, so operators can see
// how far serving lags the event stream. Targets running a result
// cache additionally report hit/miss counters and the live epoch.
//
// With -users, all queries run as one batch: locally through the
// parallel serving path (pooled Threshold-Algorithm scratch per
// worker), remotely as a single /recommend/batch round trip. Remote
// calls retry shed (429) and unavailable (503) responses with jittered
// backoff, honoring the server's Retry-After hint. `-users @load.jsonl`
// reads the batch from a workload file written by `tcamgen -queries`
// instead — each line's own time/k/exclude win over the flags.
//
// When -server points at a shard coordinator (cmd/tcamshard) that is
// running degraded, the answer is still printed but flagged with the
// item ranges that were not considered; -json emits the raw response
// instead, with the degraded and missing_item_ranges fields intact.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tcam"
	"tcam/internal/client"
)

func main() {
	var (
		bundle  = flag.String("bundle", "", "trained bundle path (local mode)")
		server  = flag.String("server", "", "tcamserver base URL (remote mode, e.g. http://localhost:8080)")
		user    = flag.String("user", "", "user identifier")
		users   = flag.String("users", "", "comma-separated user identifiers, or @file naming a JSONL query workload (batch mode)")
		when    = flag.Int64("time", 0, "query time in dataset ticks")
		k       = flag.Int("k", 10, "number of recommendations")
		exclude = flag.String("exclude", "", "comma-separated item IDs to exclude")
		asJSON  = flag.Bool("json", false, "emit the raw server response as JSON (remote mode)")
		health  = flag.Bool("health", false, "print the server's /healthz summary (snapshot version, ingest lag, staleness) instead of querying")
	)
	flag.Parse()
	var err error
	switch {
	case *health:
		err = runHealth(os.Stdout, *server, *asJSON)
	case *server != "":
		err = runRemote(os.Stdout, *server, *user, *users, *when, *k, *exclude, *asJSON)
	case *users != "":
		err = runBatch(*bundle, *users, *when, *k, *exclude)
	default:
		err = run(*bundle, *user, *when, *k, *exclude)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcamquery:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func run(bundlePath, user string, when int64, k int, exclude string) error {
	if bundlePath == "" || user == "" {
		return fmt.Errorf("-bundle and -user are required")
	}
	rec, err := tcam.LoadRecommender(bundlePath)
	if err != nil {
		return err
	}
	results, err := rec.RecommendExcluding(user, when, k, splitList(exclude))
	if err != nil {
		return err
	}
	lambda, err := rec.Lambda(user)
	if err != nil {
		return err
	}
	fmt.Printf("top-%d for %s at t=%d (interval %d, λu=%.3f):\n",
		k, user, when, rec.Grid().IntervalOf(when), lambda)
	for i, r := range results {
		fmt.Printf("%3d. %-40s %.6g\n", i+1, r.ItemID, r.Score)
	}
	return nil
}

func runBatch(bundlePath, users string, when int64, k int, exclude string) error {
	if bundlePath == "" {
		return fmt.Errorf("-bundle is required")
	}
	rec, err := tcam.LoadRecommender(bundlePath)
	if err != nil {
		return err
	}
	banned := splitList(exclude)
	var queries []tcam.BatchQuery
	if path, ok := workloadRef(users); ok {
		load, err := loadWorkload(path, when, k, banned)
		if err != nil {
			return err
		}
		queries = make([]tcam.BatchQuery, len(load))
		for i, q := range load {
			queries[i] = tcam.BatchQuery{UserID: q.User, When: q.Time, K: q.K, ExcludeIDs: q.Exclude}
		}
	} else {
		ids := strings.Split(users, ",")
		queries = make([]tcam.BatchQuery, len(ids))
		for i, id := range ids {
			queries[i] = tcam.BatchQuery{UserID: id, When: when, K: k, ExcludeIDs: banned}
		}
	}
	results, err := rec.RecommendBatch(queries)
	if err != nil {
		return err
	}
	for i, recs := range results {
		q := queries[i]
		fmt.Printf("top-%d for %s at t=%d (interval %d):\n",
			q.K, q.UserID, q.When, rec.Grid().IntervalOf(q.When))
		for j, r := range recs {
			fmt.Printf("%3d. %-40s %.6g\n", j+1, r.ItemID, r.Score)
		}
	}
	return nil
}

// runRemote asks a running tcamserver (or shard coordinator) instead
// of loading a bundle.
func runRemote(w io.Writer, baseURL, user, users string, when int64, k int, exclude string, asJSON bool) error {
	if user == "" && users == "" {
		return fmt.Errorf("-user or -users is required with -server")
	}
	c, err := client.New(client.Config{BaseURL: baseURL})
	if err != nil {
		return err
	}
	ctx := context.Background()
	banned := splitList(exclude)
	if users == "" {
		res, err := c.Recommend(ctx, user, when, k, banned)
		if err != nil {
			return err
		}
		if asJSON {
			return emitJSON(w, res)
		}
		printRemote(w, res, when, k)
		return nil
	}
	var queries []client.BatchQuery
	if path, ok := workloadRef(users); ok {
		if queries, err = loadWorkload(path, when, k, banned); err != nil {
			return err
		}
	} else {
		ids := strings.Split(users, ",")
		queries = make([]client.BatchQuery, len(ids))
		for i, id := range ids {
			queries[i] = client.BatchQuery{User: id, Time: when, K: k, Exclude: banned}
		}
	}
	batch, err := c.RecommendBatch(ctx, queries)
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(w, batch)
	}
	for i := range batch.Results {
		q := queries[i]
		printRemote(w, &batch.Results[i], q.Time, q.K)
	}
	if batch.Truncated {
		_, _ = fmt.Fprintf(w, "(server truncated the batch: %d of %d queries answered)\n",
			len(batch.Results), len(queries))
	}
	return nil
}

// runHealth prints the serving state an operator cares about: which
// snapshot generation is live and — when the server tails an ingest log
// — how far it lags the durable event stream.
func runHealth(w io.Writer, baseURL string, asJSON bool) error {
	if baseURL == "" {
		return fmt.Errorf("-health requires -server")
	}
	c, err := client.New(client.Config{BaseURL: baseURL})
	if err != nil {
		return err
	}
	h, err := c.Health(context.Background())
	if err != nil {
		return err
	}
	if asJSON {
		return emitJSON(w, h)
	}
	_, _ = fmt.Fprintf(w, "%s: %s %s — %d users, %d items, %d intervals, %d topics\n",
		baseURL, h.Status, h.ModelKind, h.Users, h.Items, h.Intervals, h.Topics)
	_, _ = fmt.Fprintf(w, "snapshot version %d", h.Version)
	if h.Draining {
		_, _ = fmt.Fprint(w, " (draining)")
	}
	_, _ = fmt.Fprintln(w)
	if c := h.Cache; c != nil {
		total := c.Hits + c.Misses
		rate := 0.0
		if total > 0 {
			rate = float64(c.Hits) / float64(total)
		}
		_, _ = fmt.Fprintf(w, "cache: %d hits / %d misses (%.1f%% hit rate), %d entries, epoch %d\n",
			c.Hits, c.Misses, 100*rate, c.Entries, c.Epoch)
		if c.HotPrecomputed > 0 {
			_, _ = fmt.Fprintf(w, "cache: last publish precomputed %d hot users\n", c.HotPrecomputed)
		}
	}
	if h.Ingest == nil {
		_, _ = fmt.Fprintln(w, "no ingest log attached (static bundle)")
		return nil
	}
	_, _ = fmt.Fprintf(w, "ingest: snapshot at log offset %d of %d (lag %d), derived %.1fs ago\n",
		h.Ingest.LogOffset, h.Ingest.LogEnd, h.Ingest.Lag, h.Ingest.StalenessSeconds)
	if h.Ingest.Lag == 0 {
		_, _ = fmt.Fprintln(w, "serving is current with the durable log")
	}
	return nil
}

func emitJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func printRemote(w io.Writer, res *client.RecommendResult, when int64, k int) {
	if res.Error != "" {
		_, _ = fmt.Fprintf(w, "top-%d for %s at t=%d: error: %s\n", k, res.User, when, res.Error)
		return
	}
	_, _ = fmt.Fprintf(w, "top-%d for %s at t=%d (interval %d):\n", k, res.User, when, res.Interval)
	for i, r := range res.Recommendations {
		_, _ = fmt.Fprintf(w, "%3d. %-40s %.6g\n", i+1, r.Item, r.Score)
	}
	if res.Degraded {
		ranges := make([]string, len(res.MissingItemRanges))
		for i, r := range res.MissingItemRanges {
			ranges[i] = fmt.Sprintf("[%d,%d)", r.Lo, r.Hi)
		}
		_, _ = fmt.Fprintf(w, "WARNING: degraded answer — item ranges %s were unavailable and not considered\n",
			strings.Join(ranges, " "))
	}
}
