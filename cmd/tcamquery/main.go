// Command tcamquery answers temporal top-k queries against a trained
// bundle from the command line, printing the ranked items with scores.
//
// Usage:
//
//	tcamquery -bundle digg.tcam -user u00042 -time 37 [-k 10] [-exclude item1,item2]
//	tcamquery -bundle digg.tcam -users u00042,u00091,u00007 -time 37 [-k 10]
//
// With -users, all queries run as one batch through the parallel
// serving path (pooled Threshold-Algorithm scratch per worker).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tcam"
)

func main() {
	var (
		bundle  = flag.String("bundle", "", "trained bundle path (required)")
		user    = flag.String("user", "", "user identifier")
		users   = flag.String("users", "", "comma-separated user identifiers (batch mode)")
		when    = flag.Int64("time", 0, "query time in dataset ticks")
		k       = flag.Int("k", 10, "number of recommendations")
		exclude = flag.String("exclude", "", "comma-separated item IDs to exclude")
	)
	flag.Parse()
	var err error
	if *users != "" {
		err = runBatch(*bundle, *users, *when, *k, *exclude)
	} else {
		err = run(*bundle, *user, *when, *k, *exclude)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcamquery:", err)
		os.Exit(1)
	}
}

func run(bundlePath, user string, when int64, k int, exclude string) error {
	if bundlePath == "" || user == "" {
		return fmt.Errorf("-bundle and -user are required")
	}
	rec, err := tcam.LoadRecommender(bundlePath)
	if err != nil {
		return err
	}
	var banned []string
	if exclude != "" {
		banned = strings.Split(exclude, ",")
	}
	results, err := rec.RecommendExcluding(user, when, k, banned)
	if err != nil {
		return err
	}
	lambda, err := rec.Lambda(user)
	if err != nil {
		return err
	}
	fmt.Printf("top-%d for %s at t=%d (interval %d, λu=%.3f):\n",
		k, user, when, rec.Grid().IntervalOf(when), lambda)
	for i, r := range results {
		fmt.Printf("%3d. %-40s %.6g\n", i+1, r.ItemID, r.Score)
	}
	return nil
}

func runBatch(bundlePath, users string, when int64, k int, exclude string) error {
	if bundlePath == "" {
		return fmt.Errorf("-bundle is required")
	}
	rec, err := tcam.LoadRecommender(bundlePath)
	if err != nil {
		return err
	}
	var banned []string
	if exclude != "" {
		banned = strings.Split(exclude, ",")
	}
	ids := strings.Split(users, ",")
	queries := make([]tcam.BatchQuery, len(ids))
	for i, id := range ids {
		queries[i] = tcam.BatchQuery{UserID: id, When: when, K: k, ExcludeIDs: banned}
	}
	results, err := rec.RecommendBatch(queries)
	if err != nil {
		return err
	}
	for i, recs := range results {
		fmt.Printf("top-%d for %s at t=%d (interval %d):\n",
			k, ids[i], when, rec.Grid().IntervalOf(when))
		for j, r := range recs {
			fmt.Printf("%3d. %-40s %.6g\n", j+1, r.ItemID, r.Score)
		}
	}
	return nil
}
