package main

// Workload-file support: `-users @load.jsonl` reads a query stream
// produced by `tcamgen -queries` — one {"user","time","k","exclude"}
// object per line, the batch API's query shape — and runs it as one
// batch, locally or remotely. Each record carries its own time, k and
// exclude list; the corresponding flags only fill in fields a record
// leaves at zero.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"tcam/internal/client"
)

// workloadRef reports whether a -users value names a workload file
// rather than an inline comma-separated list.
func workloadRef(users string) (string, bool) {
	path, ok := strings.CutPrefix(users, "@")
	return path, ok
}

// loadWorkload decodes a JSONL workload file into batch queries,
// defaulting each record's missing time/k/exclude from the flags.
func loadWorkload(path string, when int64, k int, exclude []string) ([]client.BatchQuery, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; close error carries no signal
	var out []client.BatchQuery
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var q client.BatchQuery
		if err := json.Unmarshal([]byte(raw), &q); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		if q.User == "" {
			return nil, fmt.Errorf("%s:%d: query has no user", path, line)
		}
		if q.Time == 0 {
			q.Time = when
		}
		if q.K == 0 {
			q.K = k
		}
		if q.Exclude == nil {
			q.Exclude = exclude
		}
		out = append(out, q)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: workload file has no queries", path)
	}
	return out, nil
}
