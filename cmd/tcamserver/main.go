// Command tcamserver serves a trained bundle over HTTP (see
// internal/server for the endpoint list) with a production lifecycle:
// hardened timeouts, graceful drain on SIGINT/SIGTERM, hot bundle
// reload on SIGHUP or POST /admin/reload, and bounded in-flight
// admission control.
//
// Usage:
//
//	tcamserver -bundle digg.tcam [-addr :8080]
//	    [-read-timeout 10s] [-write-timeout 30s] [-idle-timeout 2m]
//	    [-drain-timeout 30s] [-max-inflight 1024] [-max-inflight-batch 64]
//	    [-ingest-log dir] [-ingest-interval 1s] [-fold-iters 5]
//
// With -ingest-log set, a background updater tails the append-only
// event log in that directory, folds new users/items/intervals into
// the boot bundle (frozen global parameters, partial EM for new users)
// and republishes the serving snapshot; /healthz gains an "ingest"
// object with the log offset and staleness. Note that an ingest
// publish supersedes any bundle swapped in via SIGHUP — the updater
// always re-derives from the bundle the process booted with.
//
// Signals:
//
//	SIGINT/SIGTERM  flip /readyz to 503, stop the listener, and drain
//	                in-flight requests for up to -drain-timeout
//	SIGHUP          reload the bundle from -bundle without dropping
//	                traffic (atomic snapshot swap; /healthz shows the
//	                bundle version)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcam/internal/index"
	"tcam/internal/ingest"
	"tcam/internal/server"
)

// config carries everything run needs; flags populate it in main and
// tests populate it directly.
type config struct {
	bundlePath string
	addr       string

	readTimeout       time.Duration
	readHeaderTimeout time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
	drainTimeout      time.Duration

	maxInflight      int
	maxInflightBatch int

	// Continuous ingestion (empty ingestLog disables it): the server
	// tails the ingest log directory, folds new users/items/intervals
	// into the frozen boot bundle, and republishes snapshots.
	ingestLog      string
	ingestInterval time.Duration
	foldIters      int

	// Result caching (DESIGN.md §16): cacheEntries sizes the
	// epoch-versioned top-k cache (0 disables), precomputeHot warms the
	// N hottest users' answers at every publish.
	cacheEntries  int
	precomputeHot int

	logger  *log.Logger
	onReady func(addr string) // test hook: fires once the listener is bound and signals are wired
}

func main() {
	cfg := config{logger: log.New(os.Stderr, "tcamserver ", log.LstdFlags)}
	flag.StringVar(&cfg.bundlePath, "bundle", "", "trained bundle path (required)")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", 10*time.Second, "max time to read a full request")
	flag.DurationVar(&cfg.readHeaderTimeout, "read-header-timeout", 5*time.Second, "max time to read request headers")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 30*time.Second, "max time to write a response")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "graceful shutdown deadline for in-flight requests")
	flag.IntVar(&cfg.maxInflight, "max-inflight", server.DefaultMaxInflight, "concurrent /recommend budget (<=0 unlimited)")
	flag.IntVar(&cfg.maxInflightBatch, "max-inflight-batch", server.DefaultMaxInflightBatch, "concurrent /recommend/batch budget (<=0 unlimited)")
	flag.StringVar(&cfg.ingestLog, "ingest-log", "", "ingest log directory to tail for continuous fold-in (empty disables)")
	flag.DurationVar(&cfg.ingestInterval, "ingest-interval", server.DefaultUpdaterInterval, "ingest log poll period")
	flag.IntVar(&cfg.foldIters, "fold-iters", 0, "partial-EM rounds per fold-in (0 = default)")
	flag.IntVar(&cfg.cacheEntries, "cache-entries", 0, "epoch-versioned result cache capacity in entries (0 disables)")
	flag.IntVar(&cfg.precomputeHot, "precompute-hot", 0, "hottest users precomputed into the cache at each publish (needs -cache-entries)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tcamserver:", err)
		os.Exit(1)
	}
}

// run serves until SIGINT/SIGTERM, then drains and returns. SIGHUP
// triggers a hot reload in between.
func run(cfg config) error {
	srv, b, err := buildServer(cfg)
	if err != nil {
		return err
	}

	// Continuous ingestion: tail the log on a background goroutine,
	// joined via updaterDone before run returns.
	var updaterDone chan struct{}
	var updaterStop context.CancelFunc
	if cfg.ingestLog != "" {
		lg, err := ingest.Open(cfg.ingestLog)
		if err != nil {
			return err
		}
		advCfg := index.DefaultAdvanceConfig()
		if cfg.foldIters > 0 {
			advCfg.FoldIters = cfg.foldIters
		}
		up, err := server.NewUpdater(srv, lg, b, server.UpdaterConfig{
			Interval: cfg.ingestInterval,
			Advance:  advCfg,
		})
		if err != nil {
			return err
		}
		var upCtx context.Context
		upCtx, updaterStop = context.WithCancel(context.Background())
		updaterDone = make(chan struct{})
		go func() {
			defer close(updaterDone)
			up.Run(upCtx)
		}()
		cfg.logf("tailing ingest log %s every %s", cfg.ingestLog, cfg.ingestInterval)
		defer func() {
			updaterStop()
			<-updaterDone
		}()
	}

	httpSrv := &http.Server{
		Handler:           srv,
		ReadTimeout:       cfg.readTimeout,
		ReadHeaderTimeout: cfg.readHeaderTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
		ErrorLog:          cfg.logger,
	}

	// Signals are wired before the listener accepts anything, so a
	// supervisor can never fire one into the default handler.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sigs)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	cfg.logf("serving %s bundle (%d users, %d items) on %s", b.Kind, len(b.Users), len(b.Items), ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	if cfg.onReady != nil {
		cfg.onReady(ln.Addr().String())
	}

	for {
		select {
		case err := <-serveErr:
			return err // listener died without a shutdown signal
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				if v, err := srv.ReloadFromSource(); err != nil {
					cfg.logf("SIGHUP reload failed: %v", err)
				} else {
					cfg.logf("SIGHUP reload ok: bundle version %d", v)
				}
				continue
			}
			cfg.logf("%s: draining (deadline %s)", sig, cfg.drainTimeout)
			srv.StartDrain()
			ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
			err := httpSrv.Shutdown(ctx)
			cancel()
			if serveResult := <-serveErr; !errors.Is(serveResult, http.ErrServerClosed) {
				return serveResult
			}
			if err != nil {
				return fmt.Errorf("drain deadline exceeded: %w", err)
			}
			cfg.logf("drained cleanly")
			return nil
		}
	}
}

func (cfg config) logf(format string, args ...interface{}) {
	if cfg.logger != nil {
		cfg.logger.Printf(format, args...)
	}
}

// buildServer loads the bundle and constructs the handler with the
// lifecycle layer wired: in-flight limits, a reloader re-reading
// -bundle, and the process logger. Split from run so tests can
// exercise everything short of listening.
func buildServer(cfg config) (*server.Server, *index.Bundle, error) {
	if cfg.bundlePath == "" {
		return nil, nil, fmt.Errorf("-bundle is required")
	}
	b, err := index.Load(cfg.bundlePath)
	if err != nil {
		return nil, nil, err
	}
	opts := []server.Option{
		server.WithLimits(cfg.maxInflight, cfg.maxInflightBatch),
		server.WithReloader(func() (*index.Bundle, error) { return index.Load(cfg.bundlePath) }),
	}
	if cfg.cacheEntries > 0 {
		opts = append(opts, server.WithCache(cfg.cacheEntries))
		if cfg.precomputeHot > 0 {
			opts = append(opts, server.WithHotPrecompute(cfg.precomputeHot))
		}
	}
	if cfg.logger != nil {
		opts = append(opts, server.WithLogger(cfg.logger))
	}
	srv, err := server.New(b, opts...)
	if err != nil {
		return nil, nil, err
	}
	return srv, b, nil
}
