// Command tcamserver serves a trained bundle over HTTP (see
// internal/server for the endpoint list).
//
// Usage:
//
//	tcamserver -bundle digg.tcam [-addr :8080]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"tcam/internal/index"
	"tcam/internal/server"
)

func main() {
	var (
		bundlePath = flag.String("bundle", "", "trained bundle path (required)")
		addr       = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	if err := run(*bundlePath, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "tcamserver:", err)
		os.Exit(1)
	}
}

func run(bundlePath, addr string) error {
	srv, b, err := buildServer(bundlePath)
	if err != nil {
		return err
	}
	fmt.Printf("serving %s bundle (%d users, %d items) on %s\n", b.Kind, len(b.Users), len(b.Items), addr)
	fmt.Println("endpoints: /healthz  /recommend?user=&time=&k=  POST /recommend/batch  /topics/{z}?n=  /users/{id}/lambda")
	return http.ListenAndServe(addr, srv)
}

// buildServer loads the bundle and constructs the handler; split from
// run so tests can exercise everything short of listening.
func buildServer(bundlePath string) (*server.Server, *index.Bundle, error) {
	if bundlePath == "" {
		return nil, nil, fmt.Errorf("-bundle is required")
	}
	b, err := index.Load(bundlePath)
	if err != nil {
		return nil, nil, err
	}
	srv, err := server.New(b)
	if err != nil {
		return nil, nil, err
	}
	return srv, b, nil
}
