package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"tcam"
)

func trainedBundle(t *testing.T) string {
	t.Helper()
	log := tcam.NewDataset()
	for day := int64(0); day < 5; day++ {
		for u := 0; u < 6; u++ {
			if err := log.Add(fmt.Sprintf("user%d", u), fmt.Sprintf("item-%d", day), day, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	opts := tcam.DefaultOptions()
	opts.K1, opts.K2, opts.MaxIters = 3, 3, 8
	rec, err := tcam.Train(log, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.tcam")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildServerServes(t *testing.T) {
	srv, b, err := buildServer(trainedBundle(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Users) != 6 {
		t.Errorf("bundle users = %d", len(b.Users))
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/recommend?user=user2&time=3&k=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestBuildServerErrors(t *testing.T) {
	if _, _, err := buildServer(""); err == nil {
		t.Error("accepted empty bundle path")
	}
	if _, _, err := buildServer(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("accepted missing bundle")
	}
}
