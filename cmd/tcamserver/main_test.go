package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"tcam"
)

func trainedBundle(t *testing.T) string {
	t.Helper()
	log := tcam.NewDataset()
	for day := int64(0); day < 5; day++ {
		for u := 0; u < 6; u++ {
			if err := log.Add(fmt.Sprintf("user%d", u), fmt.Sprintf("item-%d", day), day, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	opts := tcam.DefaultOptions()
	opts.K1, opts.K2, opts.MaxIters = 3, 3, 8
	rec, err := tcam.Train(log, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.tcam")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func testConfig(t *testing.T) config {
	t.Helper()
	return config{
		bundlePath:        trainedBundle(t),
		addr:              "127.0.0.1:0",
		readTimeout:       5 * time.Second,
		readHeaderTimeout: 5 * time.Second,
		writeTimeout:      5 * time.Second,
		idleTimeout:       5 * time.Second,
		drainTimeout:      5 * time.Second,
		maxInflight:       64,
		maxInflightBatch:  8,
		logger:            log.New(io.Discard, "", 0),
	}
}

func TestBuildServerServes(t *testing.T) {
	srv, b, err := buildServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Users) != 6 {
		t.Errorf("bundle users = %d", len(b.Users))
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/recommend?user=user2&time=3&k=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestBuildServerErrors(t *testing.T) {
	cfg := testConfig(t)
	cfg.bundlePath = ""
	if _, _, err := buildServer(cfg); err == nil {
		t.Error("accepted empty bundle path")
	}
	cfg.bundlePath = filepath.Join(t.TempDir(), "missing")
	if _, _, err := buildServer(cfg); err == nil {
		t.Error("accepted missing bundle")
	}
}

// startRun launches run in a goroutine and returns the bound address
// and the error channel. The onReady hook guarantees signal handling is
// wired before the test fires any signal at the process.
func startRun(t *testing.T, cfg config) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	cfg.onReady = func(addr string) { ready <- addr }
	done := make(chan error, 1)
	go func() { done <- run(cfg) }()
	select {
	case addr := <-ready:
		return addr, done
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
		return "", nil
	}
}

// SIGTERM must drain and exit cleanly; /readyz flips to 503 before the
// listener closes (probed implicitly by run's StartDrain ordering).
func TestRunSIGTERMGracefulShutdown(t *testing.T) {
	addr, done := startRun(t, testConfig(t))
	resp, err := http.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before shutdown: status %d", resp.StatusCode)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}

// SIGHUP must hot-swap the bundle (version bump in /healthz) without
// interrupting service, then SIGTERM still drains cleanly.
func TestRunSIGHUPReloads(t *testing.T) {
	addr, done := startRun(t, testConfig(t))
	version := func() uint64 {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h struct {
			Version uint64 `json:"version"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h.Version
	}
	if v := version(); v != 1 {
		t.Fatalf("boot version = %d, want 1", v)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	// Reload is asynchronous to signal delivery: poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for version() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("bundle version did not reach 2 after SIGHUP")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get("http://" + addr + "/recommend?user=user2&time=3&k=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("recommend after reload: status %d", resp.StatusCode)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}
