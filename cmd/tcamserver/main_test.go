package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"tcam"
	"tcam/internal/ingest"
)

func trainedBundle(t *testing.T) string {
	t.Helper()
	log := tcam.NewDataset()
	for day := int64(0); day < 5; day++ {
		for u := 0; u < 6; u++ {
			if err := log.Add(fmt.Sprintf("user%d", u), fmt.Sprintf("item-%d", day), day, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	opts := tcam.DefaultOptions()
	opts.K1, opts.K2, opts.MaxIters = 3, 3, 8
	rec, err := tcam.Train(log, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.tcam")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func testConfig(t *testing.T) config {
	t.Helper()
	return config{
		bundlePath:        trainedBundle(t),
		addr:              "127.0.0.1:0",
		readTimeout:       5 * time.Second,
		readHeaderTimeout: 5 * time.Second,
		writeTimeout:      5 * time.Second,
		idleTimeout:       5 * time.Second,
		drainTimeout:      5 * time.Second,
		maxInflight:       64,
		maxInflightBatch:  8,
		logger:            log.New(io.Discard, "", 0),
	}
}

func TestBuildServerServes(t *testing.T) {
	srv, b, err := buildServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Users) != 6 {
		t.Errorf("bundle users = %d", len(b.Users))
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/recommend?user=user2&time=3&k=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func TestBuildServerErrors(t *testing.T) {
	cfg := testConfig(t)
	cfg.bundlePath = ""
	if _, _, err := buildServer(cfg); err == nil {
		t.Error("accepted empty bundle path")
	}
	cfg.bundlePath = filepath.Join(t.TempDir(), "missing")
	if _, _, err := buildServer(cfg); err == nil {
		t.Error("accepted missing bundle")
	}
}

// startRun launches run in a goroutine and returns the bound address
// and the error channel. The onReady hook guarantees signal handling is
// wired before the test fires any signal at the process.
func startRun(t *testing.T, cfg config) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	cfg.onReady = func(addr string) { ready <- addr }
	done := make(chan error, 1)
	go func() { done <- run(cfg) }()
	select {
	case addr := <-ready:
		return addr, done
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
		return "", nil
	}
}

// SIGTERM must drain and exit cleanly; /readyz flips to 503 before the
// listener closes (probed implicitly by run's StartDrain ordering).
func TestRunSIGTERMGracefulShutdown(t *testing.T) {
	addr, done := startRun(t, testConfig(t))
	resp, err := http.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before shutdown: status %d", resp.StatusCode)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}

// TestRunContinuousIngestion is the end-to-end acceptance test for the
// streaming loop: a producer process (here, a second ingest.Log handle)
// appends events while tcamserver runs, and the background updater must
// publish at least three successive snapshot generations — growing the
// user base, the catalog, and the time grid mid-flight — all while the
// HTTP surface keeps answering. SIGTERM at the end also exercises the
// updater goroutine join in run.
func TestRunContinuousIngestion(t *testing.T) {
	cfg := testConfig(t)
	cfg.ingestLog = t.TempDir()
	cfg.ingestInterval = 10 * time.Millisecond
	cfg.foldIters = 3
	addr, done := startRun(t, cfg)

	type ingestBody struct {
		LogOffset int64   `json:"log_offset"`
		LogEnd    int64   `json:"log_end"`
		Lag       int64   `json:"lag"`
		Staleness float64 `json:"staleness_seconds"`
	}
	type healthBody struct {
		Version   uint64      `json:"version"`
		Users     int         `json:"users"`
		Items     int         `json:"items"`
		Intervals int         `json:"intervals"`
		Ingest    *ingestBody `json:"ingest"`
	}
	health := func() healthBody {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h healthBody
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	// waitCaughtUp polls until the serving snapshot reflects the whole
	// log (offset == want, lag == 0). Exact version numbers are not
	// asserted — a poll tick may split one append batch into two
	// generations — only that versions strictly grow across waves.
	waitCaughtUp := func(want int64) healthBody {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			h := health()
			if h.Ingest != nil && h.Ingest.LogOffset == want && h.Ingest.Lag == 0 {
				return h
			}
			if time.Now().After(deadline) {
				t.Fatalf("snapshot never caught up to offset %d: %+v ingest=%+v", want, h, h.Ingest)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	recommend := func(query string) int {
		resp, err := http.Get("http://" + addr + "/recommend?" + query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	boot := health()
	if boot.Version != 1 || boot.Users != 6 || boot.Items != 5 || boot.Intervals != 5 {
		t.Fatalf("boot health = %+v", boot)
	}
	if boot.Ingest == nil {
		t.Fatal("/healthz has no ingest object with -ingest-log set")
	}

	producer, err := ingest.Open(cfg.ingestLog)
	if err != nil {
		t.Fatal(err)
	}

	// Wave 1: a brand-new user rates items from the boot catalog.
	if _, err := producer.Append(
		ingest.Record{User: "newcomer", Item: "item-2", Time: 1, Score: 2},
		ingest.Record{User: "newcomer", Item: "item-4", Time: 3, Score: 1},
	); err != nil {
		t.Fatal(err)
	}
	gen2 := waitCaughtUp(2)
	if gen2.Version <= boot.Version || gen2.Users != 7 || gen2.Items != 5 || gen2.Intervals != 5 {
		t.Fatalf("after wave 1: %+v", gen2)
	}
	if code := recommend("user=newcomer&time=3&k=3"); code != http.StatusOK {
		t.Fatalf("/recommend for folded-in user = %d", code)
	}

	// Wave 2: a new item arrives at a time past the boot grid's last
	// edge, growing both the catalog and the interval count.
	if _, err := producer.Append(ingest.Record{User: "user1", Item: "item-fresh", Time: 7, Score: 3}); err != nil {
		t.Fatal(err)
	}
	gen3 := waitCaughtUp(3)
	if gen3.Version <= gen2.Version || gen3.Users != 7 || gen3.Items != 6 || gen3.Intervals != 8 {
		t.Fatalf("after wave 2: %+v", gen3)
	}

	// Wave 3: the folded-in user keeps interacting, including with the
	// streamed item at a streamed interval.
	if _, err := producer.Append(ingest.Record{User: "newcomer", Item: "item-fresh", Time: 8, Score: 2}); err != nil {
		t.Fatal(err)
	}
	gen4 := waitCaughtUp(4)
	if gen4.Version <= gen3.Version || gen4.Users != 7 || gen4.Items != 6 {
		t.Fatalf("after wave 3: %+v", gen4)
	}
	if gen4.Version < 4 {
		t.Fatalf("served %d generations, want at least 4 (boot + 3 published)", gen4.Version)
	}
	if code := recommend("user=newcomer&time=8&k=3"); code != http.StatusOK {
		t.Fatalf("/recommend at streamed interval = %d", code)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v, want clean drain with updater joined", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM (updater goroutine not joined?)")
	}
}

// SIGHUP must hot-swap the bundle (version bump in /healthz) without
// interrupting service, then SIGTERM still drains cleanly.
func TestRunSIGHUPReloads(t *testing.T) {
	addr, done := startRun(t, testConfig(t))
	version := func() uint64 {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h struct {
			Version uint64 `json:"version"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h.Version
	}
	if v := version(); v != 1 {
		t.Fatalf("boot version = %d, want 1", v)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	// Reload is asynchronous to signal delivery: poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for version() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("bundle version did not reach 2 after SIGHUP")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get("http://" + addr + "/recommend?user=user2&time=3&k=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("recommend after reload: status %d", resp.StatusCode)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}
