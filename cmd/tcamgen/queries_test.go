package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"tcam/internal/dataset"
)

// readWorkload decodes a JSONL query-workload file.
func readWorkload(t *testing.T, path string) []workloadQuery {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []workloadQuery
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var q workloadQuery
		if err := json.Unmarshal(sc.Bytes(), &q); err != nil {
			t.Fatalf("line %d: %v", len(out)+1, err)
		}
		out = append(out, q)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunQueriesEmitsWorkload: -queries produces a JSONL workload whose
// user names come from the generated dataset's catalog, whose
// timestamps lie in the dataset's time span, and whose hottest user is
// one of the dataset's most active — all deterministic per qseed.
func TestRunQueriesEmitsWorkload(t *testing.T) {
	dir := t.TempDir()
	ds := filepath.Join(dir, "events.jsonl")
	if err := run("digg", ds, 3, 40, 60, 15, false, 256, "", queryConfig{}); err != nil {
		t.Fatal(err)
	}
	log, err := dataset.LoadJSONLFile(ds)
	if err != nil {
		t.Fatal(err)
	}
	tmin, tmax, _ := log.TimeSpan()

	out := filepath.Join(dir, "load.jsonl")
	qc := queryConfig{n: 500, seed: 7, k: 5, maxExclude: 3, userExp: 1.2, itemExp: 1.1}
	if err := run("digg", out, 3, 40, 60, 15, false, 256, "", qc); err != nil {
		t.Fatal(err)
	}
	queries := readWorkload(t, out)
	if len(queries) != 500 {
		t.Fatalf("workload has %d queries, want 500", len(queries))
	}
	counts := map[string]int{}
	for i, q := range queries {
		if _, ok := log.LookupUser(q.User); !ok {
			t.Fatalf("query %d names unknown user %q", i, q.User)
		}
		if q.Time < tmin || q.Time > tmax {
			t.Fatalf("query %d time %d outside dataset span [%d, %d]", i, q.Time, tmin, tmax)
		}
		if q.K != 5 {
			t.Fatalf("query %d k = %d, want 5", i, q.K)
		}
		if len(q.Exclude) > 3 {
			t.Fatalf("query %d exclude list too long: %v", i, q.Exclude)
		}
		for _, id := range q.Exclude {
			if _, ok := log.LookupItem(id); !ok {
				t.Fatalf("query %d excludes unknown item %q", i, id)
			}
		}
		counts[q.User]++
	}
	// Zipf rank 0 maps onto the most active user, so the workload's
	// hottest user must be among the dataset's top handful by events.
	var hottest string
	for u, c := range counts {
		if hottest == "" || c > counts[hottest] {
			hottest = u
		}
	}
	eventCounts := map[string]int{}
	for _, e := range log.Events() {
		eventCounts[log.UserID(e.User)]++
	}
	busier := 0
	for _, c := range eventCounts {
		if c > eventCounts[hottest] {
			busier++
		}
	}
	if busier > 5 {
		t.Errorf("workload's hottest user ranks %d by dataset activity, want top 5", busier+1)
	}

	// Determinism per qseed, against the same world.
	out2 := filepath.Join(dir, "load2.jsonl")
	if err := run("digg", out2, 3, 40, 60, 15, false, 256, "", qc); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(out)
	b2, _ := os.ReadFile(out2)
	if string(b1) != string(b2) {
		t.Error("same seeds produced different workloads")
	}

	// -dataset mode ranks from the saved JSONL and must agree with the
	// generated-world ranking (they describe the same events).
	out3 := filepath.Join(dir, "load3.jsonl")
	if err := run("digg", out3, 3, 40, 60, 15, false, 256, ds, qc); err != nil {
		t.Fatal(err)
	}
	b3, _ := os.ReadFile(out3)
	if string(b1) != string(b3) {
		t.Error("-dataset workload differs from generated-world workload over identical events")
	}
}

// TestRunQueriesDatasetErrors: query mode fails loudly on a missing
// dataset file and on an empty one.
func TestRunQueriesDatasetErrors(t *testing.T) {
	dir := t.TempDir()
	qc := queryConfig{n: 10, seed: 1, k: 5}
	if err := run("digg", filepath.Join(dir, "x"), 1, 0, 0, 0, false, 256, filepath.Join(dir, "nope.jsonl"), qc); err == nil {
		t.Error("run accepted a missing -dataset file")
	}
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("digg", filepath.Join(dir, "y"), 1, 0, 0, 0, false, 256, empty, qc); err == nil {
		t.Error("run accepted an event-free dataset for query synthesis")
	}
}
