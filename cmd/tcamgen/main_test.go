package main

import (
	"path/filepath"
	"testing"

	"tcam/internal/dataset"
	"tcam/internal/ingest"
)

func TestParseProfile(t *testing.T) {
	for _, name := range []string{"digg", "MovieLens", "DOUBAN", "delicious"} {
		if _, err := parseProfile(name); err != nil {
			t.Errorf("parseProfile(%q): %v", name, err)
		}
	}
	if _, err := parseProfile("netflix"); err == nil {
		t.Error("parseProfile accepted an unknown profile")
	}
}

func TestRunWritesLog(t *testing.T) {
	out := filepath.Join(t.TempDir(), "log.jsonl")
	if err := run("digg", out, 3, 50, 80, 20, false, 256, "", queryConfig{}); err != nil {
		t.Fatal(err)
	}
	log, err := dataset.LoadJSONLFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if log.NumEvents() == 0 {
		t.Error("generated log is empty")
	}
	if log.NumItems() > 80 {
		t.Errorf("item override ignored: %d items", log.NumItems())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("digg", "", 1, 0, 0, 0, false, 256, "", queryConfig{}); err == nil {
		t.Error("run accepted empty output path")
	}
	if err := run("bogus", filepath.Join(t.TempDir(), "x"), 1, 0, 0, 0, false, 256, "", queryConfig{}); err == nil {
		t.Error("run accepted unknown profile")
	}
	if err := run("digg", filepath.Join(t.TempDir(), "x"), 1, -5, 0, 0, false, 256, "", queryConfig{}); err == nil {
		// negative override leaves defaults; generation succeeds, so no
		// error expected — verify that explicitly.
		t.Log("negative user override fell back to defaults (expected)")
	}
}

// TestRunStreamWritesTimeOrderedLog: -stream produces an ingest log
// directory whose replay is sorted by event time and carries every
// generated event, and the stream is deterministic per seed.
func TestRunStreamWritesTimeOrderedLog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "stream.log")
	if err := run("digg", dir, 3, 40, 60, 15, true, 64, "", queryConfig{}); err != nil {
		t.Fatal(err)
	}
	lg, err := ingest.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var recs []ingest.Record
	if err := lg.Replay(0, func(_ int64, r ingest.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("streamed log is empty")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Fatalf("stream out of order at record %d: %d after %d", i, recs[i].Time, recs[i-1].Time)
		}
	}
	// The stream carries exactly the dataset the batch mode would write.
	out := filepath.Join(t.TempDir(), "log.jsonl")
	if err := run("digg", out, 3, 40, 60, 15, false, 256, "", queryConfig{}); err != nil {
		t.Fatal(err)
	}
	log, err := dataset.LoadJSONLFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != log.NumEvents() {
		t.Errorf("stream has %d events, dataset has %d", len(recs), log.NumEvents())
	}
	// Determinism: a second run into a fresh directory replays the same
	// end offset (the driver for reproducible load tests).
	dir2 := filepath.Join(t.TempDir(), "stream2.log")
	if err := run("digg", dir2, 3, 40, 60, 15, true, 32, "", queryConfig{}); err != nil {
		t.Fatal(err)
	}
	lg2, err := ingest.Open(dir2)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	if err := lg2.Replay(0, func(_ int64, r ingest.Record) error {
		if r != recs[i] {
			t.Fatalf("record %d differs across runs: %+v vs %+v", i, r, recs[i])
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if i != len(recs) {
		t.Fatalf("second run replayed %d records, want %d", i, len(recs))
	}
	// A bad batch size is rejected.
	if err := run("digg", filepath.Join(t.TempDir(), "z"), 1, 20, 30, 5, true, 0, "", queryConfig{}); err == nil {
		t.Error("run accepted -batch 0", "", queryConfig{})
	}
}
