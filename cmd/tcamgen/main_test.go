package main

import (
	"path/filepath"
	"testing"

	"tcam/internal/dataset"
)

func TestParseProfile(t *testing.T) {
	for _, name := range []string{"digg", "MovieLens", "DOUBAN", "delicious"} {
		if _, err := parseProfile(name); err != nil {
			t.Errorf("parseProfile(%q): %v", name, err)
		}
	}
	if _, err := parseProfile("netflix"); err == nil {
		t.Error("parseProfile accepted an unknown profile")
	}
}

func TestRunWritesLog(t *testing.T) {
	out := filepath.Join(t.TempDir(), "log.jsonl")
	if err := run("digg", out, 3, 50, 80, 20); err != nil {
		t.Fatal(err)
	}
	log, err := dataset.LoadJSONLFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if log.NumEvents() == 0 {
		t.Error("generated log is empty")
	}
	if log.NumItems() > 80 {
		t.Errorf("item override ignored: %d items", log.NumItems())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("digg", "", 1, 0, 0, 0); err == nil {
		t.Error("run accepted empty output path")
	}
	if err := run("bogus", filepath.Join(t.TempDir(), "x"), 1, 0, 0, 0); err == nil {
		t.Error("run accepted unknown profile")
	}
	if err := run("digg", filepath.Join(t.TempDir(), "x"), 1, -5, 0, 0); err == nil {
		// negative override leaves defaults; generation succeeds, so no
		// error expected — verify that explicitly.
		t.Log("negative user override fell back to defaults (expected)")
	}
}
