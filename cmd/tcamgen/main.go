// Command tcamgen generates a synthetic social-media interaction log
// from one of the four dataset profiles (Digg, MovieLens, Douban,
// Delicious) and writes it as JSONL, the format the rest of the toolchain
// consumes.
//
// Usage:
//
//	tcamgen -profile digg -out digg.jsonl [-seed 1] [-users N] [-items N] [-days N]
//	tcamgen -profile digg -out digg.log -stream [-batch 256]
//	tcamgen -profile digg -out load.jsonl -queries 10000 [-qseed 1] [-k 10] [-max-exclude 4]
//
// With -stream, -out names an ingest log directory instead of a JSONL
// file: the generated events are sorted by event time and appended as
// CRC-framed ingest records in -batch sized appends, producing exactly
// the time-ordered stream a producer would feed `tcamserver
// -ingest-log` — so the continuous-ingestion path can be load-tested
// against realistic Zipf-shaped traffic.
//
// With -queries N, tcamgen emits a serving workload instead of events:
// N JSONL requests ({"user","time","k","exclude"}, the batch API's
// query shape) whose user/item popularity is Zipf-skewed over the
// activity ranking of the generated dataset — or of an existing one
// named with -dataset. `tcamquery -users @file` and the server
// benchmarks consume this format directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tcam/internal/datagen"
	"tcam/internal/dataset"
	"tcam/internal/ingest"
)

func main() {
	var (
		profileName = flag.String("profile", "digg", "dataset profile: digg | movielens | douban | delicious")
		out         = flag.String("out", "", "output JSONL path, or ingest log directory with -stream (required)")
		seed        = flag.Int64("seed", 1, "generator seed")
		users       = flag.Int("users", 0, "override user count (0 = profile default)")
		items       = flag.Int("items", 0, "override item count (0 = profile default)")
		days        = flag.Int("days", 0, "override timeline length in days (0 = profile default)")
		stream      = flag.Bool("stream", false, "emit a time-ordered ingest log directory instead of a JSONL dataset")
		batch       = flag.Int("batch", 256, "records per ingest append with -stream")

		queries    = flag.Int("queries", 0, "emit a Zipf query workload of this many JSONL requests instead of events")
		datasetIn  = flag.String("dataset", "", "with -queries: rank users/items from this JSONL dataset instead of generating one")
		qseed      = flag.Int64("qseed", 1, "query-stream seed (independent of -seed)")
		k          = flag.Int("k", 10, "top-k per emitted query")
		maxExclude = flag.Int("max-exclude", 0, "per-query exclude-list length bound")
		userExp    = flag.Float64("user-exp", 1.1, "Zipf exponent of query-user popularity")
		itemExp    = flag.Float64("item-exp", 1.1, "Zipf exponent of exclude-item popularity")
	)
	flag.Parse()
	qc := queryConfig{n: *queries, seed: *qseed, k: *k, maxExclude: *maxExclude, userExp: *userExp, itemExp: *itemExp}
	if err := run(*profileName, *out, *seed, *users, *items, *days, *stream, *batch, *datasetIn, qc); err != nil {
		fmt.Fprintln(os.Stderr, "tcamgen:", err)
		os.Exit(1)
	}
}

func run(profileName, out string, seed int64, users, items, days int, stream bool, batch int, datasetIn string, qc queryConfig) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	if qc.n > 0 && datasetIn != "" {
		// Query mode over an existing dataset needs no world generation.
		log, err := dataset.LoadJSONLFile(datasetIn)
		if err != nil {
			return err
		}
		return emitQueries(log, out, qc, datasetIn)
	}
	profile, err := parseProfile(profileName)
	if err != nil {
		return err
	}
	cfg := datagen.DefaultConfig(profile)
	cfg.Seed = seed
	if users > 0 {
		cfg.NumUsers = users
	}
	if items > 0 {
		cfg.NumItems = items
	}
	if days > 0 {
		cfg.NumDays = days
	}
	world, err := datagen.Generate(cfg)
	if err != nil {
		return err
	}
	if qc.n > 0 {
		return emitQueries(world.Log, out, qc, fmt.Sprintf("%s profile, seed %d", profile, seed))
	}
	if stream {
		if err := writeStream(world.Log, out, batch); err != nil {
			return err
		}
		fmt.Printf("streamed %s: %d users, %d items, %d time-ordered events over %d days (%s profile, seed %d)\n",
			out, world.Log.NumUsers(), world.Log.NumItems(), world.Log.NumEvents(), cfg.NumDays, profile, seed)
		return nil
	}
	if err := world.Log.SaveJSONLFile(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d users, %d items, %d events over %d days (%s profile, seed %d)\n",
		out, world.Log.NumUsers(), world.Log.NumItems(), world.Log.NumEvents(), cfg.NumDays, profile, seed)
	return nil
}

// writeStream appends the log's events, sorted by event time (ties keep
// generation order, so output is deterministic per seed), to the ingest
// log directory dir in batchSize-record appends.
func writeStream(log *dataset.Interactions, dir string, batchSize int) error {
	if batchSize <= 0 {
		return fmt.Errorf("-batch must be positive, got %d", batchSize)
	}
	events := log.Events()
	recs := make([]ingest.Record, len(events))
	for i, e := range events {
		recs[i] = ingest.Record{User: log.UserID(e.User), Item: log.ItemID(e.Item), Time: e.Time, Score: e.Score}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
	lg, err := ingest.Open(dir)
	if err != nil {
		return err
	}
	for lo := 0; lo < len(recs); lo += batchSize {
		hi := lo + batchSize
		if hi > len(recs) {
			hi = len(recs)
		}
		if _, err := lg.Append(recs[lo:hi]...); err != nil {
			return err
		}
	}
	return nil
}

// emitQueries writes the workload and reports what it covered; source
// describes where the activity ranking came from.
func emitQueries(log *dataset.Interactions, out string, qc queryConfig, source string) error {
	if err := writeQueries(log, out, qc); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d queries over %d users, %d items (%s, qseed %d)\n",
		out, qc.n, log.NumUsers(), log.NumItems(), source, qc.seed)
	return nil
}

func parseProfile(name string) (datagen.Profile, error) {
	switch strings.ToLower(name) {
	case "digg":
		return datagen.Digg, nil
	case "movielens":
		return datagen.MovieLens, nil
	case "douban":
		return datagen.Douban, nil
	case "delicious":
		return datagen.Delicious, nil
	default:
		return 0, fmt.Errorf("unknown profile %q (want digg|movielens|douban|delicious)", name)
	}
}
