// Command tcamgen generates a synthetic social-media interaction log
// from one of the four dataset profiles (Digg, MovieLens, Douban,
// Delicious) and writes it as JSONL, the format the rest of the toolchain
// consumes.
//
// Usage:
//
//	tcamgen -profile digg -out digg.jsonl [-seed 1] [-users N] [-items N] [-days N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tcam/internal/datagen"
)

func main() {
	var (
		profileName = flag.String("profile", "digg", "dataset profile: digg | movielens | douban | delicious")
		out         = flag.String("out", "", "output JSONL path (required)")
		seed        = flag.Int64("seed", 1, "generator seed")
		users       = flag.Int("users", 0, "override user count (0 = profile default)")
		items       = flag.Int("items", 0, "override item count (0 = profile default)")
		days        = flag.Int("days", 0, "override timeline length in days (0 = profile default)")
	)
	flag.Parse()
	if err := run(*profileName, *out, *seed, *users, *items, *days); err != nil {
		fmt.Fprintln(os.Stderr, "tcamgen:", err)
		os.Exit(1)
	}
}

func run(profileName, out string, seed int64, users, items, days int) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	profile, err := parseProfile(profileName)
	if err != nil {
		return err
	}
	cfg := datagen.DefaultConfig(profile)
	cfg.Seed = seed
	if users > 0 {
		cfg.NumUsers = users
	}
	if items > 0 {
		cfg.NumItems = items
	}
	if days > 0 {
		cfg.NumDays = days
	}
	world, err := datagen.Generate(cfg)
	if err != nil {
		return err
	}
	if err := world.Log.SaveJSONLFile(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d users, %d items, %d events over %d days (%s profile, seed %d)\n",
		out, world.Log.NumUsers(), world.Log.NumItems(), world.Log.NumEvents(), cfg.NumDays, profile, seed)
	return nil
}

func parseProfile(name string) (datagen.Profile, error) {
	switch strings.ToLower(name) {
	case "digg":
		return datagen.Digg, nil
	case "movielens":
		return datagen.MovieLens, nil
	case "douban":
		return datagen.Douban, nil
	case "delicious":
		return datagen.Delicious, nil
	default:
		return 0, fmt.Errorf("unknown profile %q (want digg|movielens|douban|delicious)", name)
	}
}
