package main

// Query-workload emission (-queries): instead of an event log, tcamgen
// writes a JSONL stream of serving requests shaped like the batch API's
// query object — {"user","time","k","exclude"} — so the same file drives
// `tcamquery -users @file`, the server benchmarks, and any external load
// generator. User and item popularity in the workload follow the
// activity ranking of a concrete dataset (generated or loaded with
// -dataset), so the hottest query users are the users a trained bundle
// actually knows most about — matching how cache hit rates behave in
// production, where read and write skew coincide.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"tcam/internal/datagen"
	"tcam/internal/dataset"
)

// queryConfig carries the -queries flag group.
type queryConfig struct {
	n          int     // number of queries to emit
	seed       int64   // query-stream seed (independent of the world seed)
	k          int     // top-k per query
	maxExclude int     // per-query exclude-list bound
	userExp    float64 // Zipf exponent over activity-ranked users
	itemExp    float64 // Zipf exponent over activity-ranked exclude items
}

// workloadQuery is one emitted JSONL record. Field names match the
// serving tier's batch query object (client.BatchQuery).
type workloadQuery struct {
	User    string   `json:"user"`
	Time    int64    `json:"time"`
	K       int      `json:"k,omitempty"`
	Exclude []string `json:"exclude,omitempty"`
}

// writeQueries synthesizes qc.n Zipf-skewed queries against log's
// user/item catalogs and writes them to path as JSONL, one query per
// line. Timestamps are drawn uniformly across the log's observed time
// span so the workload exercises every interval of a bundle built from
// the same data.
func writeQueries(log *dataset.Interactions, path string, qc queryConfig) error {
	users := rankByActivity(log.NumUsers(), log.Events(),
		func(e dataset.Event) int { return e.User }, log.UserID)
	items := rankByActivity(log.NumItems(), log.Events(),
		func(e dataset.Event) int { return e.Item }, log.ItemID)
	tmin, tmax, ok := log.TimeSpan()
	if !ok {
		return fmt.Errorf("dataset has no events to derive a query time span from")
	}
	queries, err := datagen.GenerateQueries(datagen.QueryLoadConfig{
		Queries:      qc.n,
		Users:        len(users),
		Items:        len(items),
		UserExponent: qc.userExp,
		ItemExponent: qc.itemExp,
		TimeMin:      tmin,
		TimeMax:      tmax,
		K:            qc.k,
		MaxExclude:   qc.maxExclude,
		Seed:         qc.seed,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, q := range queries {
		rec := workloadQuery{User: log.UserID(users[q.User]), Time: q.Time, K: q.K}
		for _, v := range q.Exclude {
			rec.Exclude = append(rec.Exclude, log.ItemID(items[v]))
		}
		if err := enc.Encode(rec); err != nil {
			_ = f.Close() // already on the error path
			return err
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close() // already on the error path
		return err
	}
	return f.Close()
}

// rankByActivity orders the catalog indices that appear in at least
// one event by descending event count. GenerateQueries hands out Zipf
// ranks — rank 0 hottest — and this maps rank onto the catalog index
// that actually is hottest in the data. Ties break on the entry's
// name, not its index, so the ranking is identical whether the catalog
// was interned at generation time or re-interned from a saved JSONL
// (the two orders differ). Zero-event entries are dropped: a bundle
// trained from the same events has never seen them, and a generated
// world may intern users the saved JSONL never mentions.
func rankByActivity(n int, events []dataset.Event, of func(dataset.Event) int, name func(int) string) []int {
	counts := make([]int, n)
	for _, e := range events {
		counts[of(e)]++
	}
	var order []int
	for i, c := range counts {
		if c > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return name(a) < name(b)
	})
	return order
}
