package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run("", false, true, 1, false, 1, "", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", false, false, 1, false, 1, "", 0, 0, 0); err == nil {
		t.Error("run accepted no action")
	}
	if err := run("not-an-experiment", false, false, 1, false, 1, "", 0, 0, 0); err == nil {
		t.Error("run accepted unknown experiment id")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	// table2 is the cheapest experiment: dataset generation only.
	if err := run("table2", false, false, 0.1, true, 1, "", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}
