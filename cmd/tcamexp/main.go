// Command tcamexp regenerates the paper's tables and figures on the
// synthetic worlds (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	tcamexp -list                      enumerate experiments
//	tcamexp -exp figure6               run one experiment
//	tcamexp -all                       run every experiment in paper order
//	tcamexp -all -scale 0.25 -fast     lighter run for smoke checks
//	tcamexp -all -out results.txt      tee the report to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tcam/internal/experiments"
)

func main() {
	var (
		list    = flag.String("exp", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		showIDs = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.Float64("scale", 1.0, "world scale multiplier")
		fast    = flag.Bool("fast", false, "use the light training budgets")
		seed    = flag.Int64("seed", 1, "experiment seed")
		outPath = flag.String("out", "", "also write the report to this file")
		workers = flag.Int("workers", 0, "parallelism (0 = all CPUs)")
		burnin  = flag.Int("burnin", 0, "override BPTF Gibbs burn-in sweeps (0 = config default)")
		samples = flag.Int("samples", 0, "override BPTF retained Gibbs samples (0 = config default)")
	)
	flag.Parse()
	if err := run(*list, *all, *showIDs, *scale, *fast, *seed, *outPath, *workers, *burnin, *samples); err != nil {
		fmt.Fprintln(os.Stderr, "tcamexp:", err)
		os.Exit(1)
	}
}

func run(expID string, all, showIDs bool, scale float64, fast bool, seed int64, outPath string, workers, burnin, samples int) (err error) {
	if showIDs {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := experiments.Default()
	if fast {
		cfg = experiments.Small()
		cfg.Scale = 1 // -fast trims training budgets; -scale trims worlds
	}
	cfg.Scale = scale
	cfg.Seed = seed
	cfg.Workers = workers
	if burnin > 0 {
		cfg.GibbsBurnin = burnin
	}
	if samples > 0 {
		cfg.GibbsKeep = samples
	}
	runner := experiments.NewRunner(cfg)

	var w io.Writer = os.Stdout
	if outPath != "" {
		f, cerr := os.Create(outPath)
		if cerr != nil {
			return cerr
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = io.MultiWriter(os.Stdout, f)
	}

	switch {
	case all:
		return experiments.RunAll(runner, w)
	case expID != "":
		e, ok := experiments.Find(expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", expID)
		}
		if _, werr := fmt.Fprintf(w, "==== %s: %s ====\n", e.ID, e.Title); werr != nil {
			return werr
		}
		return e.Run(runner, w)
	default:
		return fmt.Errorf("pass -all, -exp <id>, or -list")
	}
}
